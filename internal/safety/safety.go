// Package safety evaluates IVN transmissions against RF exposure and
// regulatory limits. The paper's related-work section leans on two claims
// this package makes checkable: boosting transmit power "neither scales
// well nor is safe for human exposure" ([40, 57]), and CIB's "intrinsic
// duty-cycled operation makes it FCC compliant and safe for human
// exposure" (§7).
//
// Two quantities are modeled:
//
//   - EIRP against the FCC Part 15.247 limit for the 902-928 MHz ISM band
//     (36 dBm = 4 W for digitally modulated systems).
//   - Localized specific absorption rate (SAR) at the body surface,
//     SAR = σ·E²/ρ, time-averaged the way exposure standards prescribe —
//     which is exactly where duty cycling helps: CIB's beat envelope
//     concentrates energy in brief peaks, so its *average* deposition
//     matches a much weaker continuous transmitter.
package safety

import (
	"fmt"
	"math"

	"ivn/internal/em"
	"ivn/internal/radio"
)

// Regulatory and exposure constants.
const (
	// FCCMaxEIRPdBm is the Part 15.247 EIRP ceiling in the 902-928 MHz
	// ISM band (1 W conducted + 6 dBi antenna).
	FCCMaxEIRPdBm = 36.0 //ivn:unit dBm
	// SARLimitWkg is the FCC localized SAR limit (1 g average) in W/kg.
	SARLimitWkg = 1.6
	// SARLimitWholeBodyWkg is the whole-body average limit in W/kg.
	SARLimitWholeBodyWkg = 0.08
	// TissueDensity is the standard soft-tissue mass density, kg/m³.
	TissueDensity = 1000.0
)

// EIRPdBm returns the strongest per-chain EIRP of a carrier set given the
// transmit antenna gain. Under FCC rules, frequency-distinct CIB chains
// are evaluated per transmitter, not as a coherent aggregate — the same
// reason N conventional readers may share a warehouse.
//
//ivn:unit antennaGainDBi dBi
//ivn:unit return dBm
func EIRPdBm(carriers []radio.Carrier, antennaGainDBi float64) float64 {
	var maxP float64
	for _, c := range carriers {
		p := c.Amplitude * c.Amplitude
		if p > maxP {
			maxP = p
		}
	}
	if maxP <= 0 {
		return math.Inf(-1)
	}
	return 10*math.Log10(maxP) + 30 + antennaGainDBi
}

// FCCCompliant reports whether every chain respects the ISM EIRP limit.
func FCCCompliant(carriers []radio.Carrier, antennaGainDBi float64) bool {
	return EIRPdBm(carriers, antennaGainDBi) <= FCCMaxEIRPdBm+1e-9
}

// Exposure describes an RF exposure evaluation point at the body surface.
type Exposure struct {
	// PeakSAR is the instantaneous worst-case SAR in W/kg (at the beat
	// peak for CIB).
	PeakSAR float64
	// AverageSAR is the time-averaged SAR in W/kg — the quantity
	// regulatory limits constrain (averaged over 6/30 minutes, far longer
	// than any CIB period).
	AverageSAR float64
	// IncidentAvgWm2 is the time-average incident power density, W/m².
	IncidentAvgWm2 float64
}

// String formats the exposure against the localized limit.
func (e Exposure) String() string {
	return fmt.Sprintf("Exposure{peak %.3g W/kg, avg %.3g W/kg (limit %.1f), incident %.3g W/m²}",
		e.PeakSAR, e.AverageSAR, SARLimitWkg, e.IncidentAvgWm2)
}

// Compliant reports whether the time-averaged localized SAR is inside the
// FCC limit.
func (e Exposure) Compliant() bool { return e.AverageSAR <= SARLimitWkg }

// EvaluateSurface computes the exposure where the beam enters tissue.
//
// carriers is the emitted tone set; antennaGain the amplitude gain of
// each transmit antenna; distance the antenna→skin distance; entry the
// first tissue layer (its conductivity sets the absorption); peakFactor
// the ratio of the envelope's peak amplitude to the incoherent RMS sum
// (N for a perfectly aligned CIB peak, 1 for a single carrier); freq the
// carrier frequency.
//
// SAR = σ·E_tissue²/ρ with E_tissue the RMS field just inside the
// boundary. The average SAR uses the power sum of the carriers (their
// relative phases average out over a beat period); the peak SAR scales
// it by peakFactor² — present only for the brief instants the envelope
// aligns.
func EvaluateSurface(carriers []radio.Carrier, antennaGain float64, distance float64, entry em.Medium, peakFactor float64, freq float64) (Exposure, error) {
	if len(carriers) == 0 {
		return Exposure{}, fmt.Errorf("safety: no carriers")
	}
	if distance <= 0 {
		return Exposure{}, fmt.Errorf("safety: distance %v <= 0", distance)
	}
	if peakFactor < 1 {
		return Exposure{}, fmt.Errorf("safety: peak factor %v < 1", peakFactor)
	}
	// Time-average incident power density at the skin: Σ Pᵢ·G / (4πr²).
	var ptot float64
	for _, c := range carriers {
		ptot += c.Amplitude * c.Amplitude
	}
	g := antennaGain * antennaGain
	sAvg := ptot * g / (4 * math.Pi * distance * distance)

	// Field just inside the tissue: S_in = S·T_power; E² = S_in·η_tissue
	// (plane-wave relation E²/η = power density, with the medium's wave
	// impedance).
	tp := em.TransmittancePower(em.Air, entry, freq)
	eta := entry.Impedance(freq)
	e2avg := sAvg * tp * eta
	avgSAR := entry.Conductivity * e2avg / TissueDensity

	// Peak: amplitudes align, field scales by peakFactor over the RMS sum
	// of ONE carrier... more precisely the aligned peak power is
	// (Σ amplitudes)² vs the average Σ amplitudes²; peakFactor lets the
	// caller supply the measured ratio.
	peakSAR := avgSAR * peakFactor * peakFactor
	return Exposure{PeakSAR: peakSAR, AverageSAR: avgSAR, IncidentAvgWm2: sAvg}, nil
}

// ContinuousEquivalentPower returns the power (watts) a single continuous
// transmitter would need to deliver the same *peak* field CIB produces,
// given CIB's total radiated power and its peak-to-average power ratio.
// This is the §7 safety argument quantified: matching CIB's deliverable
// peak with CW requires papr× more average power, and it is the average
// that heats tissue.
func ContinuousEquivalentPower(totalRadiated, papr float64) (float64, error) {
	if totalRadiated <= 0 || papr < 1 {
		return 0, fmt.Errorf("safety: bad inputs P=%v papr=%v", totalRadiated, papr)
	}
	return totalRadiated * papr, nil
}

// DutyCycle summarizes a CIB envelope's energy concentration: the
// fraction of time the envelope spends within 3 dB of its peak and the
// peak-to-average power ratio.
type DutyCycle struct {
	// FractionNearPeak is the fraction of a period within 3 dB of peak.
	FractionNearPeak float64
	// PAPR is the peak-to-average power ratio.
	PAPR float64
}

// AnalyzeEnvelope computes the duty-cycle profile of an amplitude
// envelope (e.g. one CIB period sampled by core.EnvelopeSeries).
func AnalyzeEnvelope(env []float64) (DutyCycle, error) {
	if len(env) == 0 {
		return DutyCycle{}, fmt.Errorf("safety: empty envelope")
	}
	var peak, sumSq float64
	for _, v := range env {
		if v > peak {
			peak = v
		}
		sumSq += v * v
	}
	if peak <= 0 {
		return DutyCycle{}, fmt.Errorf("safety: all-zero envelope")
	}
	avg := sumSq / float64(len(env))
	thresh := peak * peak / 2 // −3 dB in power
	near := 0
	for _, v := range env {
		if v*v >= thresh {
			near++
		}
	}
	return DutyCycle{
		FractionNearPeak: float64(near) / float64(len(env)),
		PAPR:             peak * peak / avg,
	}, nil
}
