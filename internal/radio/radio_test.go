package radio

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"ivn/internal/rng"
)

func TestOscillatorLockRandomizesPhase(t *testing.T) {
	r := rng.New(1)
	o := Oscillator{Freq: 915e6}
	o.Lock(r)
	p1 := o.Phase()
	o.Lock(r)
	p2 := o.Phase()
	if p1 == p2 {
		t.Fatal("two locks produced identical phases")
	}
	for _, p := range []float64{p1, p2} {
		if p < 0 || p >= 2*math.Pi {
			t.Fatalf("phase %v outside [0,2π)", p)
		}
	}
}

func TestOscillatorPhaseBeforeLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Phase before Lock did not panic")
		}
	}()
	o := Oscillator{Freq: 915e6}
	_ = o.Phase()
}

func TestOscillatorPhaseUniform(t *testing.T) {
	r := rng.New(2)
	o := Oscillator{Freq: 915e6}
	buckets := make([]int, 8)
	const n = 8000
	for i := 0; i < n; i++ {
		o.Lock(r)
		buckets[int(o.Phase()/(2*math.Pi)*8)]++
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/8) > 5*math.Sqrt(n/8) {
			t.Fatalf("phase bucket %d has %d locks, want ≈%d", i, c, n/8)
		}
	}
}

func TestPALinearRegion(t *testing.T) {
	pa := DefaultPA()
	// Tiny input: output ≈ gain × input.
	in := 1e-4
	want := in * math.Pow(10, pa.GainDB/20)
	got := pa.Amplify(in)
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("small-signal gain off: %v vs %v", got, want)
	}
}

func TestPACompressionAtP1dB(t *testing.T) {
	pa := DefaultPA()
	// Find the input whose linear output would be P1dB+1dB... simpler:
	// verify the model's defining property — at the drive level where the
	// output hits P1dB, gain is compressed by ≈1 dB.
	p1Watts := math.Pow(10, (pa.P1dBm-30)/10)
	aOut := math.Sqrt(p1Watts)
	g := math.Pow(10, pa.GainDB/20)
	aIn := aOut / g * math.Pow(10, 1.0/20) // linear output 1 dB above P1dB
	got := pa.Amplify(aIn)
	compDB := 20 * math.Log10(g*aIn/got)
	if math.Abs(compDB-1) > 0.2 {
		t.Fatalf("compression at P1dB drive = %v dB, want ≈1", compDB)
	}
}

func TestPASaturationCeiling(t *testing.T) {
	pa := DefaultPA()
	big := pa.Amplify(1e3)
	ceiling := pa.MaxOutputAmplitude()
	if big > ceiling*1.0001 {
		t.Fatalf("output %v exceeded saturation %v", big, ceiling)
	}
	// Monotone nondecreasing.
	prev := 0.0
	for in := 0.0; in < 1; in += 0.01 {
		out := pa.Amplify(in)
		if out < prev {
			t.Fatalf("PA not monotone at %v", in)
		}
		prev = out
	}
	if pa.Amplify(-1) != 0 {
		t.Fatal("negative drive produced output")
	}
}

func TestAntennaGain(t *testing.T) {
	a := Antenna{GainDBi: 7}
	want := math.Pow(10, 7.0/20)
	if g := a.AmplitudeGain(); math.Abs(g-want) > 1e-12 {
		t.Fatalf("amplitude gain = %v, want %v", g, want)
	}
	if g := (Antenna{}).AmplitudeGain(); g != 1 {
		t.Fatalf("isotropic gain = %v, want 1", g)
	}
}

func TestNewUniformArrayValidation(t *testing.T) {
	if _, err := NewUniformArray(nil, 1, DefaultPA(), Antenna{}); err == nil {
		t.Fatal("empty array accepted")
	}
	if _, err := NewUniformArray([]float64{915e6}, 0, DefaultPA(), Antenna{}); err == nil {
		t.Fatal("zero drive accepted")
	}
	if _, err := NewUniformArray([]float64{0}, 1, DefaultPA(), Antenna{}); err == nil {
		t.Fatal("zero frequency accepted")
	}
}

func TestArrayLockAndCarriers(t *testing.T) {
	freqs := []float64{915e6, 915e6 + 7, 915e6 + 20}
	arr, err := NewUniformArray(freqs, 0.1, DefaultPA(), Antenna{GainDBi: 7})
	if err != nil {
		t.Fatal(err)
	}
	arr.Lock(rng.New(5))
	cs := arr.Carriers()
	if len(cs) != 3 {
		t.Fatalf("%d carriers", len(cs))
	}
	for i, c := range cs {
		if c.Freq != freqs[i] {
			t.Fatalf("carrier %d freq %v", i, c.Freq)
		}
		if c.Amplitude <= 0 {
			t.Fatalf("carrier %d amplitude %v", i, c.Amplitude)
		}
	}
	// Phases differ across chains (independent PLLs).
	if cs[0].Phase == cs[1].Phase && cs[1].Phase == cs[2].Phase {
		t.Fatal("all PLLs locked at the same phase")
	}
	if p := arr.TotalRadiatedPower(); p <= 0 {
		t.Fatalf("total power %v", p)
	}
}

func TestArrayLockDeterministicPerSeed(t *testing.T) {
	mk := func(seed uint64) []Carrier {
		arr, _ := NewUniformArray([]float64{915e6, 915e6 + 7}, 0.1, DefaultPA(), Antenna{})
		arr.Lock(rng.New(seed))
		return arr.Carriers()
	}
	a, b := mk(9), mk(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different carrier phases")
		}
	}
}

func TestSharedClockAlignment(t *testing.T) {
	c := DefaultClock()
	// 5 ns jitter against a 12.5 µs Tari: easily aligned within 1%.
	if !c.CommandAligned(12.5e-6, 0.01) {
		t.Fatal("default clock cannot align Gen2 symbols")
	}
	// A microsecond-jitter clock cannot.
	bad := SharedClock{RefFreq: 10e6, SyncJitter: 1e-6}
	if bad.CommandAligned(12.5e-6, 0.01) {
		t.Fatal("sloppy clock reported aligned")
	}
	// Offsets are centred and small.
	r := rng.New(3)
	var acc, count float64
	for i := 0; i < 1000; i++ {
		off := c.StartOffset(r)
		acc += off
		count++
		if math.Abs(off) > 6*c.SyncJitter {
			t.Fatalf("offset %v beyond 6σ", off)
		}
	}
	if math.Abs(acc/count) > c.SyncJitter {
		t.Fatalf("offsets biased: mean %v", acc/count)
	}
}

func TestSAWFilterShape(t *testing.T) {
	f := DefaultSAW(880e6)
	if a := f.AttenuationDB(880e6); math.Abs(a-f.InsertionLossDB) > 1e-9 {
		t.Fatalf("center attenuation %v", a)
	}
	if a := f.AttenuationDB(915e6); a < f.RejectionDB {
		t.Fatalf("915 MHz attenuation %v dB, want >= %v", a, f.RejectionDB)
	}
	// Skirt is monotone.
	prev := f.AttenuationDB(880e6)
	for off := 0.0; off <= 20e6; off += 0.5e6 {
		a := f.AttenuationDB(880e6 + off)
		if a < prev-1e-9 {
			t.Fatalf("skirt not monotone at +%v Hz", off)
		}
		prev = a
	}
	// Apply: power scaling matches dB.
	in := 1e-3
	out := f.Apply(in, 915e6)
	wantDB := f.AttenuationDB(915e6)
	if math.Abs(10*math.Log10(in/out)-wantDB) > 1e-9 {
		t.Fatal("Apply disagrees with AttenuationDB")
	}
}

func TestReceiverSelfJammingScenario(t *testing.T) {
	// The §4 story: an in-band reader is saturated by CIB transmitters; an
	// out-of-band reader with a SAW filter is not.
	jam := []ToneAt{{Freq: 915e6, Power: 1e-3}} // 0 dBm of leaked CIB power
	inBand := NewReceiver(915e6)
	outBand := NewReceiver(880e6)
	if !inBand.Saturated(jam) {
		t.Fatal("in-band receiver survived 0 dBm jamming")
	}
	if outBand.Saturated(jam) {
		t.Fatal("out-of-band receiver saturated despite SAW rejection")
	}
}

func TestReceiverSNR(t *testing.T) {
	rx := NewReceiver(880e6)
	// Signal at −60 dBm against the −90 dBm floor: ≈30 dB.
	snr := rx.SNRdB(1e-9, nil)
	if math.Abs(snr-30) > 0.5 {
		t.Fatalf("SNR = %v dB, want ≈30", snr)
	}
	// Out-of-band jam is attenuated by the filter before it degrades SNR:
	// the residual jam power must match the filter's rejection, and the
	// unfiltered jam would have been catastrophically worse.
	jam := []ToneAt{{Freq: 915e6, Power: 1e-6}}
	snrJam := rx.SNRdB(1e-9, jam)
	if snrJam > snr {
		t.Fatal("jamming improved SNR")
	}
	residual := rx.EffectiveInterference(jam)
	wantSNR := 10 * math.Log10(1e-9/(rx.NoiseFloor+residual))
	if math.Abs(snrJam-wantSNR) > 0.1 {
		t.Fatalf("jammed SNR %v dB, want %v", snrJam, wantSNR)
	}
	// The 35 MHz-offset tone is outside the digital channel, so the
	// combined analog+digital rejection (≈107 dB) must leave the SNR
	// essentially at the thermal limit.
	if snr-snrJam > 1 {
		t.Fatalf("out-of-channel tone still cost %v dB", snr-snrJam)
	}
	unfiltered := 10 * math.Log10(1e-9/(rx.NoiseFloor+jam[0].Power))
	if snrJam-unfiltered < 40 {
		t.Fatalf("filtering only bought %v dB of SNR", snrJam-unfiltered)
	}
	// An in-channel jammer receives no digital rejection.
	eff := rx.EffectiveInterference([]ToneAt{{Freq: 880e6 + 100e3, Power: 1e-9}})
	wantEff := rx.Filter.Apply(1e-9, 880e6+100e3)
	if math.Abs(eff-wantEff)/wantEff > 1e-9 {
		t.Fatalf("in-channel interference got digital rejection: %v vs %v", eff, wantEff)
	}
	if !math.IsInf(rx.SNRdB(0, nil), -1) {
		t.Fatal("zero signal should give -Inf SNR")
	}
}

func TestReceiverAddNoisePower(t *testing.T) {
	rx := NewReceiver(880e6)
	rx.NoiseFloor = 1e-6
	x := make([]complex128, 200000)
	rx.AddNoise(x, rng.New(7))
	var p float64
	for _, v := range x {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= float64(len(x))
	if math.Abs(p-rx.NoiseFloor)/rx.NoiseFloor > 0.05 {
		t.Fatalf("noise power %v, want ≈%v", p, rx.NoiseFloor)
	}
}

func TestQuantize(t *testing.T) {
	x := []complex128{complex(0.5, -0.25), complex(2, 0), complex(-3, 1)}
	clipped, err := Quantize(x, 12, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if clipped != 2 {
		t.Fatalf("clipped = %d, want 2", clipped)
	}
	if real(x[1]) != 1.0 {
		t.Fatalf("clipped sample = %v, want full scale", x[1])
	}
	// Quantization error bounded by half a step.
	step := 1.0 / float64(int64(1)<<11)
	if math.Abs(real(x[0])-0.5) > step/2+1e-15 {
		t.Fatalf("quantization error too large: %v", real(x[0]))
	}
	if _, err := Quantize(x, 1, 1); err == nil {
		t.Fatal("1-bit ADC accepted")
	}
	if _, err := Quantize(x, 12, 0); err == nil {
		t.Fatal("zero full scale accepted")
	}
}

func TestReceivedBasebandSingleCarrier(t *testing.T) {
	carriers := []Carrier{{Freq: 915e6 + 100, Phase: 0.5, Amplitude: 2}}
	chans := []complex128{complex(0.5, 0)}
	y, err := ReceivedBaseband(carriers, chans, 915e6, 10e3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Magnitude is constant |A·h| = 1.
	for i, v := range y {
		if math.Abs(cmplx.Abs(v)-1) > 1e-9 {
			t.Fatalf("sample %d magnitude %v", i, cmplx.Abs(v))
		}
	}
	// It rotates at 100 Hz: phase advance per sample = 2π·100/10e3.
	wantStep := 2 * math.Pi * 100 / 10e3
	gotStep := cmplx.Phase(y[1] * cmplx.Conj(y[0]))
	if math.Abs(gotStep-wantStep) > 1e-9 {
		t.Fatalf("phase step %v, want %v", gotStep, wantStep)
	}
}

func TestReceivedBasebandSuperposition(t *testing.T) {
	// N equal carriers with aligned phases and unit channels peak at N.
	const n = 5
	carriers := make([]Carrier, n)
	chans := make([]complex128, n)
	for i := range carriers {
		carriers[i] = Carrier{Freq: 915e6 + float64(i), Phase: 0, Amplitude: 1}
		chans[i] = 1
	}
	y, err := ReceivedBaseband(carriers, chans, 915e6, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if peak := cmplx.Abs(y[0]); math.Abs(peak-n) > 1e-9 {
		t.Fatalf("aligned peak = %v, want %d", peak, n)
	}
}

func TestReceivedBasebandErrors(t *testing.T) {
	if _, err := ReceivedBaseband([]Carrier{{}}, nil, 915e6, 1e3, 10); err == nil {
		t.Fatal("mismatched channels accepted")
	}
	if _, err := ReceivedBaseband(nil, nil, 915e6, 0, 10); err == nil {
		t.Fatal("zero sample rate accepted")
	}
	if _, err := ReceivedBaseband(nil, nil, 915e6, 1e3, -1); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestReceivedBasebandLongCaptureStable(t *testing.T) {
	// The phasor recurrence must hold magnitude over a 2-second capture at
	// 10 kHz (the paper's measurement interval).
	carriers := []Carrier{{Freq: 915e6 + 137, Phase: 1.1, Amplitude: 1}}
	chans := []complex128{1}
	y, err := ReceivedBaseband(carriers, chans, 915e6, 10e3, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if m := cmplx.Abs(y[len(y)-1]); math.Abs(m-1) > 1e-6 {
		t.Fatalf("magnitude drifted to %v", m)
	}
}

func TestQuickPAMonotone(t *testing.T) {
	pa := DefaultPA()
	f := func(a, b uint16) bool {
		x, y := float64(a)/1e4, float64(b)/1e4
		if x > y {
			x, y = y, x
		}
		return pa.Amplify(x) <= pa.Amplify(y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReceivedBaseband8Carriers(b *testing.B) {
	carriers := make([]Carrier, 8)
	chans := make([]complex128, 8)
	for i := range carriers {
		carriers[i] = Carrier{Freq: 915e6 + float64(i*17), Phase: float64(i), Amplitude: 1}
		chans[i] = complex(0.5, 0.1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReceivedBaseband(carriers, chans, 915e6, 10e3, 10000); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDriveForAndOperatingDrive(t *testing.T) {
	pa := DefaultPA()
	// OperatingDrive puts the output exactly at P1dB (1 W → amplitude 1).
	d := pa.OperatingDrive()
	out := pa.Amplify(d)
	if math.Abs(out-1) > 1e-6 {
		t.Fatalf("operating output %v √W, want 1", out)
	}
	// DriveFor round-trips arbitrary reachable outputs.
	for _, want := range []float64{0.01, 0.3, 0.9, 1.2} {
		in, err := pa.DriveFor(want)
		if err != nil {
			t.Fatalf("DriveFor(%v): %v", want, err)
		}
		if got := pa.Amplify(in); math.Abs(got-want)/want > 1e-6 {
			t.Fatalf("DriveFor(%v) → output %v", want, got)
		}
	}
	// Unreachable or invalid requests error.
	if _, err := pa.DriveFor(pa.MaxOutputAmplitude() * 1.01); err == nil {
		t.Fatal("above-saturation output accepted")
	}
	if _, err := pa.DriveFor(0); err == nil {
		t.Fatal("zero output accepted")
	}
	if _, err := pa.DriveFor(-1); err == nil {
		t.Fatal("negative output accepted")
	}
}

func TestOscillatorLocked(t *testing.T) {
	o := Oscillator{Freq: 915e6}
	if o.Locked() {
		t.Fatal("fresh oscillator reports locked")
	}
	o.Lock(rng.New(1))
	if !o.Locked() {
		t.Fatal("locked oscillator reports unlocked")
	}
}
