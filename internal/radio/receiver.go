package radio

import (
	"fmt"
	"math"

	"ivn/internal/rng"
)

// SAWFilter is a behavioral band-pass pre-selector: near-zero loss inside
// the passband, a fixed high rejection outside it, with a raised-cosine
// transition. IVN's out-of-band reader uses one to keep the CIB
// transmitters (915 MHz) from saturating its 880 MHz receive chain
// (paper §4, §5b).
type SAWFilter struct {
	// Center is the passband center in Hz.
	Center float64 //ivn:unit Hz
	// HalfWidth is the passband half-width in Hz.
	HalfWidth float64 //ivn:unit Hz
	// TransitionWidth is the skirt width in Hz.
	TransitionWidth float64 //ivn:unit Hz
	// RejectionDB is the stopband rejection (positive dB).
	RejectionDB float64 //ivn:unit dB
	// InsertionLossDB is the passband loss (positive dB).
	InsertionLossDB float64 //ivn:unit dB
}

// DefaultSAW returns a high-rejection front-end filter: ±10 MHz passband,
// 5 MHz skirts, 45 dB rejection, 2 dB insertion loss.
//
//ivn:unit center Hz
func DefaultSAW(center float64) SAWFilter {
	return SAWFilter{
		Center:          center,
		HalfWidth:       10e6,
		TransitionWidth: 5e6,
		RejectionDB:     45,
		InsertionLossDB: 2,
	}
}

// AttenuationDB returns the filter's power attenuation at freq (positive
// dB, including insertion loss).
//
//ivn:unit freq Hz
//ivn:unit return dB
func (f SAWFilter) AttenuationDB(freq float64) float64 {
	off := math.Abs(freq - f.Center)
	switch {
	case off <= f.HalfWidth:
		return f.InsertionLossDB
	case off >= f.HalfWidth+f.TransitionWidth:
		return f.InsertionLossDB + f.RejectionDB
	default:
		// Raised-cosine skirt.
		frac := (off - f.HalfWidth) / f.TransitionWidth
		return f.InsertionLossDB + f.RejectionDB*(1-math.Cos(math.Pi*frac))/2
	}
}

// Apply scales a tone's power (watts) at freq through the filter.
//
//ivn:unit powerWatts W
//ivn:unit freq Hz
//ivn:unit return W
func (f SAWFilter) Apply(powerWatts, freq float64) float64 {
	return powerWatts * math.Pow(10, -f.AttenuationDB(freq)/10)
}

// ToneAt is a received tone: power after the antenna, before the filter.
type ToneAt struct {
	Freq  float64 //ivn:unit Hz
	Power float64 //ivn:unit W
}

// Receiver is a direct-conversion receive chain: SAW pre-filter → LNA with
// a saturation ceiling → baseband. Saturation is the self-jamming failure
// the out-of-band design exists to avoid: when the total post-filter power
// exceeds the LNA's limit, the chain clips and the backscatter sidebands
// are unrecoverable.
type Receiver struct {
	// Center is the LO frequency in Hz.
	Center float64 //ivn:unit Hz
	// Filter is the front-end pre-selector.
	Filter SAWFilter
	// SaturationPower is the LNA input compression limit in watts.
	SaturationPower float64 //ivn:unit W
	// NoiseFloor is the integrated thermal noise power in watts over the
	// receive bandwidth.
	NoiseFloor float64 //ivn:unit W
	// BasebandHalfWidth is the digital channel filter's half-width in Hz.
	// An interfering *tone* outside it — like the CIB carriers 35 MHz
	// away — is removed digitally after the ADC; the SAW filter's job is
	// only to keep it from saturating the analog chain first.
	BasebandHalfWidth float64 //ivn:unit Hz
	// DigitalRejectionDB is the post-ADC rejection applied to tones
	// outside the baseband channel (positive dB).
	DigitalRejectionDB float64 //ivn:unit dB
}

// NewReceiver builds a receiver with a default SAW at the LO, a −20 dBm
// saturation limit, a −90 dBm noise floor, a ±1 MHz digital channel and
// 60 dB digital stopband rejection.
//
//ivn:unit center Hz
func NewReceiver(center float64) *Receiver {
	return &Receiver{
		Center:             center,
		Filter:             DefaultSAW(center),
		SaturationPower:    1e-5,  // −20 dBm
		NoiseFloor:         1e-12, // −90 dBm
		BasebandHalfWidth:  1e6,
		DigitalRejectionDB: 60,
	}
}

// EffectiveInterference returns the interference power that actually
// lands inside the demodulation bandwidth: post-SAW power, further
// reduced by digital rejection for tones outside the baseband channel.
//
//ivn:unit return W
func (r *Receiver) EffectiveInterference(tones []ToneAt) float64 {
	var p float64
	for _, t := range tones {
		v := r.Filter.Apply(t.Power, t.Freq)
		if math.Abs(t.Freq-r.Center) > r.BasebandHalfWidth {
			v *= math.Pow(10, -r.DigitalRejectionDB/10)
		}
		p += v
	}
	return p
}

// PostFilterPower returns the total power reaching the LNA from tones.
//
//ivn:unit return W
func (r *Receiver) PostFilterPower(tones []ToneAt) float64 {
	var p float64
	for _, t := range tones {
		p += r.Filter.Apply(t.Power, t.Freq)
	}
	return p
}

// Saturated reports whether tones drive the LNA past its limit.
func (r *Receiver) Saturated(tones []ToneAt) bool {
	return r.PostFilterPower(tones) > r.SaturationPower
}

// SNRdB returns the signal-to-(noise+interference) ratio for a wanted
// in-band signal power against a set of interfering tones, assuming the
// receiver is not saturated. Interference is weighted by both the analog
// pre-filter and the digital channel rejection.
//
//ivn:unit signalWatts W
//ivn:unit return dB
func (r *Receiver) SNRdB(signalWatts float64, jammers []ToneAt) float64 {
	if signalWatts <= 0 {
		return math.Inf(-1)
	}
	n := r.NoiseFloor + r.EffectiveInterference(jammers)
	return 10 * math.Log10(signalWatts/n)
}

// AddNoise adds complex AWGN with the receiver's noise floor to a baseband
// capture of n samples; the per-sample noise power equals NoiseFloor
// (noise already integrated over the receive bandwidth).
func (r *Receiver) AddNoise(x []complex128, rnd *rng.Rand) {
	sigma := math.Sqrt(r.NoiseFloor / 2)
	for i := range x {
		x[i] += rnd.ComplexCircular(sigma)
	}
}

// Quantize applies ADC quantization in place: bits of resolution over
// ±fullScale on each of I and Q, clipping beyond. It returns the number
// of clipped components (I and Q counted separately — a sample clipped on
// both rails contributes two) so callers can detect converter overload.
// Inputs at or beyond a rail clamp to that rail's code: a just-over-full-
// scale sample produces the max code, never a wrapped or sign-flipped
// value.
func Quantize(x []complex128, bits int, fullScale float64) (clipped int, err error) {
	if bits < 2 || bits > 24 {
		return 0, fmt.Errorf("radio: ADC bits %d outside [2,24]", bits)
	}
	if fullScale <= 0 {
		return 0, fmt.Errorf("radio: ADC full scale %v <= 0", fullScale)
	}
	levels := float64(int64(1) << uint(bits-1)) // per polarity
	step := fullScale / levels
	q := func(v float64) (float64, bool) {
		clip := false
		if v > fullScale {
			v, clip = fullScale, true
		} else if v < -fullScale {
			v, clip = -fullScale, true
		}
		return math.Round(v/step) * step, clip
	}
	for i := range x {
		re, c1 := q(real(x[i]))
		im, c2 := q(imag(x[i]))
		x[i] = complex(re, im)
		if c1 {
			clipped++
		}
		if c2 {
			clipped++
		}
	}
	return clipped, nil
}

// ReceivedBaseband synthesizes the complex baseband a receiver centered at
// f0 observes from a set of carriers, each multiplied by its own channel
// coefficient: y[k] = Σᵢ Aᵢ·hᵢ·e^{j(2π(fᵢ−f0)·k/fs + θᵢ)}. This is the
// signal at the *sensor* (or reader) — the superposition whose envelope
// CIB shapes. chans must have one coefficient per carrier.
//
//ivn:unit f0 Hz
//ivn:unit fs Hz
func ReceivedBaseband(carriers []Carrier, chans []complex128, f0, fs float64, n int) ([]complex128, error) {
	if len(carriers) != len(chans) {
		return nil, fmt.Errorf("radio: %d carriers but %d channels", len(carriers), len(chans))
	}
	if fs <= 0 || n < 0 {
		return nil, fmt.Errorf("radio: bad capture spec fs=%v n=%d", fs, n)
	}
	out := make([]complex128, n)
	for i, c := range carriers {
		h := chans[i]
		if h == 0 || c.Amplitude == 0 {
			continue
		}
		// Phasor recurrence, re-normalized periodically (see dsp.AddToneTo).
		step := 2 * math.Pi * (c.Freq - f0) / fs
		ss, cs := math.Sincos(step)
		rot := complex(cs, ss)
		s0, c0 := math.Sincos(c.Phase)
		cur := complex(c.Amplitude*c0, c.Amplitude*s0) * h
		mag := math.Hypot(real(cur), imag(cur))
		for k := 0; k < n; k++ {
			out[k] += cur
			cur *= rot
			if k&1023 == 1023 {
				m := math.Hypot(real(cur), imag(cur))
				if m != 0 {
					cur *= complex(mag/m, 0)
				}
			}
		}
	}
	return out, nil
}
