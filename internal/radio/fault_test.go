package radio

import (
	"math"
	"testing"

	"ivn/internal/rng"
)

// TestQuantizeBoundaries pins the clip semantics at the converter rails:
// exactly-full-scale and just-over-full-scale inputs must land on the max
// code with no wraparound or sign flip, and negative overloads mirror.
func TestQuantizeBoundaries(t *testing.T) {
	const fs = 1.0
	eps := fs * 1e-9
	x := []complex128{
		complex(fs, -fs),             // exactly at the rails: representable boundary
		complex(fs+eps, -(fs + eps)), // just over: clips, no wraparound
		complex(fs*1e6, -fs*1e6),     // far over: still the rail codes
	}
	clipped, err := Quantize(x, 12, fs)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly ±fullScale is the boundary code, not an overload.
	if real(x[0]) != fs || imag(x[0]) != -fs {
		t.Fatalf("full-scale sample moved: %v", x[0])
	}
	// Over-range samples clamp to the rails — a wraparound or sign flip
	// would surface here as a negative real or positive imaginary part.
	for i := 1; i < 3; i++ {
		if real(x[i]) != fs || imag(x[i]) != -fs {
			t.Fatalf("sample %d = %v, want (%v,%v)", i, x[i], fs, -fs)
		}
	}
	// Per-component accounting: samples 1 and 2 clip on both I and Q.
	if clipped != 4 {
		t.Fatalf("clipped = %d, want 4 (per-component)", clipped)
	}
}

// TestQuantizePerComponentCount: a sample overloading both rails counts
// twice; one rail counts once; in-range counts zero.
func TestQuantizePerComponentCount(t *testing.T) {
	x := []complex128{
		complex(2.0, 3.0),   // both components clip: +2
		complex(-2.0, 0.5),  // real only: +1
		complex(0.25, -0.5), // clean: +0
	}
	clipped, err := Quantize(x, 8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if clipped != 3 {
		t.Fatalf("clipped = %d, want 3", clipped)
	}
}

// dropChain zeroes one chain and re-locks another.
type dropChain struct{ drop, relock int }

func (d dropChain) PerturbCarrier(chain int, c Carrier) Carrier {
	if chain == d.drop {
		c.Amplitude = 0
	}
	if chain == d.relock {
		c.Phase = 1.25
	}
	return c
}

// TestPerturbedCarriers: the fault overlays the observed tone set without
// touching the chains — the next healthy observation is unchanged.
func TestPerturbedCarriers(t *testing.T) {
	arr, err := NewUniformArray([]float64{915e6, 915.5e6, 916e6}, 0.05, DefaultPA(), Antenna{GainDBi: 7})
	if err != nil {
		t.Fatal(err)
	}
	arr.Lock(rng.New(5))
	healthy := arr.Carriers()

	got := arr.PerturbedCarriers(dropChain{drop: 0, relock: 2})
	if got[0].Amplitude != 0 {
		t.Fatalf("dropped chain still emitting %v", got[0].Amplitude)
	}
	if got[1] != healthy[1] {
		t.Fatalf("untouched chain perturbed: %v vs %v", got[1], healthy[1])
	}
	if math.Abs(got[2].Phase-1.25) > 1e-15 {
		t.Fatalf("re-locked chain phase %v, want 1.25", got[2].Phase)
	}
	if got[2].Amplitude != healthy[2].Amplitude {
		t.Fatalf("re-lock changed amplitude: %v", got[2].Amplitude)
	}

	// nil fault is the identity, and the overlay never mutated the array.
	again := arr.PerturbedCarriers(nil)
	for i := range again {
		if again[i] != healthy[i] {
			t.Fatalf("chain %d mutated by overlay: %v vs %v", i, again[i], healthy[i])
		}
	}
}
