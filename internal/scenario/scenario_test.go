package scenario

import (
	"math"
	"math/cmplx"
	"testing"

	"ivn/internal/em"
	"ivn/internal/rng"
)

func TestTankRealizeShape(t *testing.T) {
	sc := NewTank(0.5, em.Water, 0.1)
	p, err := sc.Realize(10, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Downlink) != 10 {
		t.Fatalf("%d downlink channels", len(p.Downlink))
	}
	for i, c := range p.Downlink {
		if err := c.Validate(); err != nil {
			t.Fatalf("channel %d: %v", i, err)
		}
		if c.Direct.Depth() != 0.1 {
			t.Fatalf("channel %d depth %v", i, c.Direct.Depth())
		}
	}
	if p.ReaderDown == nil || p.ReaderUp == nil {
		t.Fatal("missing reader channels")
	}
	if p.CIBLeakPerWatt <= 0 || p.CIBLeakPerWatt >= 1 {
		t.Fatalf("leak fraction %v", p.CIBLeakPerWatt)
	}
	if sc.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestRealizeDeterministic(t *testing.T) {
	sc := NewTank(0.5, em.Water, 0.1)
	a, err := sc.Realize(4, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Realize(4, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Downlink {
		ha := a.Downlink[i].Coefficient(915e6)
		hb := b.Downlink[i].Coefficient(915e6)
		if ha != hb {
			t.Fatalf("channel %d differs across identical seeds", i)
		}
	}
}

func TestRealizeChannelsVaryAcrossAntennas(t *testing.T) {
	sc := NewTank(0.5, em.Water, 0.1)
	p, err := sc.Realize(8, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	phases := map[float64]bool{}
	for _, c := range p.Downlink {
		phases[cmplx.Phase(c.Coefficient(915e6))] = true
	}
	if len(phases) < 8 {
		t.Fatalf("only %d distinct channel phases over 8 antennas", len(phases))
	}
}

func TestDeepTankWeakerThanShallow(t *testing.T) {
	shallow, err := NewTank(0.5, em.Water, 0.02).Realize(1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	deep, err := NewTank(0.5, em.Water, 0.2).Realize(1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	ps := shallow.Downlink[0].PowerGain(915e6)
	pd := deep.Downlink[0].PowerGain(915e6)
	if pd >= ps {
		t.Fatalf("deep gain %v >= shallow %v", pd, ps)
	}
}

func TestAirScenario(t *testing.T) {
	sc := NewAir(5)
	p, err := sc.Realize(2, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Downlink {
		if c.Direct.Depth() != 0 {
			t.Fatal("air scenario has tissue layers")
		}
	}
	far := sc.WithRange(20)
	if far.Range != 20 || sc.Range != 5 {
		t.Fatal("WithRange broken")
	}
	if sc.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestTankWithDepthCopies(t *testing.T) {
	sc := NewTank(0.5, em.Water, 0.1)
	deep := sc.WithDepth(0.25)
	if deep.Depth != 0.25 || sc.Depth != 0.1 {
		t.Fatal("WithDepth broken")
	}
}

func TestAirMediumTankActsAsAir(t *testing.T) {
	// A tank of air at depth d behaves like range + d of air.
	sc := NewTank(0.5, em.Air, 0.1)
	p, err := sc.Realize(1, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Downlink[0].Direct.Layers) != 0 {
		t.Fatal("air tank produced layers")
	}
}

func TestSwineStacks(t *testing.T) {
	g := NewSwine(Gastric)
	sub := NewSwine(Subcutaneous)
	gd, sd := 0.0, 0.0
	for _, l := range g.Stack() {
		gd += l.Thickness
	}
	for _, l := range sub.Stack() {
		sd += l.Thickness
	}
	if gd <= sd {
		t.Fatal("gastric stack not deeper than subcutaneous")
	}
	if gd < 0.05 || gd > 0.12 {
		t.Fatalf("gastric depth %v m implausible", gd)
	}
	if g.Name() == "" || sub.Name() == "" {
		t.Fatal("empty names")
	}
	if Gastric.String() != "gastric" || Subcutaneous.String() != "subcutaneous" {
		t.Fatal("placement names wrong")
	}
}

func TestSwineRealizeVariability(t *testing.T) {
	sc := NewSwine(Gastric)
	r := rng.New(6)
	depths := map[float64]bool{}
	airs := map[float64]bool{}
	for i := 0; i < 10; i++ {
		p, err := sc.Realize(3, r)
		if err != nil {
			t.Fatal(err)
		}
		depths[p.Downlink[0].Direct.Depth()] = true
		airs[p.Downlink[0].Direct.AirDistance] = true
		// Standoff within the protocol's 30–80 cm (±antenna spread).
		air := p.Downlink[0].Direct.AirDistance
		if air < 0.3-sc.AntennaSpread || air > 0.8+sc.AntennaSpread {
			t.Fatalf("standoff %v outside protocol range", air)
		}
	}
	if len(depths) < 5 || len(airs) < 5 {
		t.Fatal("breathing/repositioning produced no variability")
	}
}

func TestGastricLinkWeakerThanSubcutaneous(t *testing.T) {
	r1, err := NewSwine(Gastric).Realize(1, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewSwine(Subcutaneous).Realize(1, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Downlink[0].PowerGain(915e6) >= r2.Downlink[0].PowerGain(915e6) {
		t.Fatal("gastric link not weaker than subcutaneous")
	}
}

func TestMediaSweepList(t *testing.T) {
	ms := MediaSweep()
	if len(ms) != 7 {
		t.Fatalf("%d media, want 7 (air, water, 2 fluids, 3 tissues)", len(ms))
	}
	names := map[string]bool{}
	for _, sc := range ms {
		if _, err := sc.Realize(2, rng.New(8)); err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		names[sc.Name()] = true
	}
	if len(names) != 7 {
		t.Fatal("duplicate scenario names")
	}
}

func TestFixedOrientation(t *testing.T) {
	sc := NewTank(0.5, em.Water, 0.1)
	sc.FixedOrientation = math.Pi / 3
	p, err := sc.Realize(1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Orientation-math.Pi/3) > 1e-12 {
		t.Fatalf("orientation %v, want π/3", p.Orientation)
	}
	want := em.DipoleOrientationGain(math.Pi/3, sc.OrientationFloor)
	if math.Abs(p.Downlink[0].OrientationGain-want) > 1e-12 {
		t.Fatalf("orientation gain %v, want %v", p.Downlink[0].OrientationGain, want)
	}
}

func TestRealizeValidation(t *testing.T) {
	sc := NewTank(0.5, em.Water, 0.1)
	if _, err := sc.Realize(0, rng.New(1)); err == nil {
		t.Fatal("0 antennas accepted")
	}
	bad := NewTank(-1, em.Water, 0.1)
	if _, err := bad.Realize(1, rng.New(1)); err == nil {
		t.Fatal("negative air distance accepted")
	}
}

func TestLeakIsRealisticForJammingStory(t *testing.T) {
	// The leak must be strong enough to saturate an unfiltered in-band
	// receiver at prototype power (total ≈10 W radiated) yet weak enough
	// for the SAW-filtered out-of-band receiver: between −30 dBm and
	// +20 dBm per radiated watt.
	p, err := NewTank(0.5, em.Water, 0.1).Realize(10, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	leakDBm := 10*math.Log10(p.CIBLeakPerWatt) + 30
	if leakDBm < -30 || leakDBm > 20 {
		t.Fatalf("leak %v dBm per radiated watt outside plausible range", leakDBm)
	}
}
