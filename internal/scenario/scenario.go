// Package scenario builds the experiment geometries of IVN's evaluation:
// the tank-in-air setup (paper Fig. 7), the line-of-sight range setup
// (Fig. 8), the media sweep (Fig. 11), and the swine gastric/subcutaneous
// placements (Fig. 14). A Scenario realizes randomized per-trial channel
// sets: one downlink channel per beamformer antenna at the CIB carrier,
// plus reader downlink/uplink channels at the out-of-band carrier, plus
// the CIB→reader leakage that drives the self-jamming analysis.
package scenario

import (
	"fmt"
	"math"
	"strconv"

	"ivn/internal/em"
	"ivn/internal/rng"
)

// Placement is one realized trial: a tag position/orientation with all
// relevant channels instantiated.
type Placement struct {
	// Downlink[i] is beamformer antenna i → sensor at the CIB carrier.
	Downlink []*em.Channel
	// ReaderDown is the reader TX antenna → sensor at the reader carrier;
	// ReaderUp is the reverse path (reciprocal geometry, independently
	// realized multipath).
	ReaderDown, ReaderUp *em.Channel
	// CIBLeakPerWatt is the fraction of each CIB chain's radiated power
	// that reaches the reader's receive antenna (same-room coupling).
	CIBLeakPerWatt float64
	// Orientation is the tag rotation drawn for this trial, radians.
	Orientation float64
	// UplinkPhaseDriftPerPeriod is the phase random-walk variance (rad²)
	// the reader link accumulates per 1 s averaging period from subject
	// motion (breathing); zero for static benches.
	UplinkPhaseDriftPerPeriod float64
	// Geom is the geometry that realized this placement, so downstream
	// consumers evaluate their chains at the scenario's actual carriers
	// instead of assuming the defaults. Read it through Geometry(), which
	// falls back to DefaultGeometry for hand-built placements.
	Geom Geometry

	// layers is scratch for the base path's tissue stack, reused across
	// RealizeInto calls so realization stays allocation-free. The realized
	// channels alias it read-only until the placement is realized again.
	layers []em.Layer
}

// Geometry returns the geometry that realized p. A zero Geom (a
// placement built by hand rather than by Scenario.Realize) falls back to
// DefaultGeometry, which matches the historical assumption call sites
// hard-coded.
func (p *Placement) Geometry() Geometry {
	if p.Geom.CIBFreq == 0 {
		return DefaultGeometry()
	}
	return p.Geom
}

// Scenario generates placements.
type Scenario interface {
	// Name identifies the scenario in experiment output.
	Name() string
	// Realize draws a placement with nAntennas downlink channels.
	Realize(nAntennas int, r *rng.Rand) (*Placement, error)
}

// PlacementReuser is implemented by scenarios that can realize into a
// caller-owned Placement, reusing its channel, ray and layer storage.
// RealizeInto must draw exactly the variate sequence of Realize so the two
// are interchangeable under a fixed seed.
type PlacementReuser interface {
	Scenario
	RealizeInto(p *Placement, nAntennas int, r *rng.Rand) error
}

// RealizeInto realizes sc into p, reusing p's storage when the scenario
// supports it and falling back to a fresh Realize otherwise. Either way
// the variate stream and resulting placement are identical to Realize.
func RealizeInto(sc Scenario, p *Placement, nAntennas int, r *rng.Rand) error {
	if ru, ok := sc.(PlacementReuser); ok {
		return ru.RealizeInto(p, nAntennas, r)
	}
	q, err := sc.Realize(nAntennas, r)
	if err != nil {
		return err
	}
	*p = *q
	return nil
}

// Geometry is the shared parameter block concrete scenarios embed.
type Geometry struct {
	// CIBFreq and ReaderFreq are the carrier frequencies.
	CIBFreq, ReaderFreq float64
	// TxAntennaGainDBi applies to every beamformer/reader antenna.
	TxAntennaGainDBi float64
	// AntennaSpread is the ± range of per-antenna air-distance variation
	// (the panels occupy different positions, meters).
	AntennaSpread float64
	// Multipath describes the environment's echoes.
	Multipath em.MultipathProfile
	// ReaderStandoff is the beamformer→reader antenna distance used for
	// the leakage estimate.
	ReaderStandoff float64
	// OrientationFloor is the residual coupling of a fully cross-
	// polarized tag.
	OrientationFloor float64
	// FixedOrientation pins the tag rotation (radians) when >= 0;
	// negative draws a random orientation per trial.
	FixedOrientation float64
}

// DefaultGeometry matches the prototype: 915/880 MHz, 7 dBi panels spread
// over ±25 cm, indoor multipath, reader 1 m from the array.
func DefaultGeometry() Geometry {
	return Geometry{
		CIBFreq:          915e6,
		ReaderFreq:       880e6,
		TxAntennaGainDBi: 7,
		AntennaSpread:    0.25,
		Multipath:        em.DefaultIndoorProfile,
		ReaderStandoff:   1.0,
		OrientationFloor: 0.2,
		FixedOrientation: -1,
	}
}

// realize builds a placement for a path template: per-antenna air-distance
// jitter, shared tag orientation, independent multipath.
func (g Geometry) realize(base em.Path, nAntennas int, r *rng.Rand) (*Placement, error) {
	p := &Placement{}
	if err := g.realizeInto(p, base, nAntennas, r); err != nil {
		return nil, err
	}
	return p, nil
}

// realizeInto is realize writing into caller-owned storage: downlink and
// reader channels (with their ray buffers) are reset and refilled in
// place, the split labels come from a stack buffer (byte-identical to the
// historical fmt.Sprintf labels), and the base path's layer stack is
// aliased read-only by every channel instead of copied per channel. The
// variate draw sequence matches realize exactly.
func (g Geometry) realizeInto(p *Placement, base em.Path, nAntennas int, r *rng.Rand) error {
	if nAntennas < 1 {
		return fmt.Errorf("scenario: %d antennas", nAntennas)
	}
	if err := base.Validate(); err != nil {
		return err
	}
	orientation := g.FixedOrientation
	if orientation < 0 {
		orientation = r.Phase() / 2 // [0, π)
	}
	og := em.DipoleOrientationGain(orientation, g.OrientationFloor)
	txGain := dbiAmp(g.TxAntennaGainDBi)

	p.Orientation = orientation
	p.Geom = g
	p.UplinkPhaseDriftPerPeriod = 0

	// Grow the downlink slice through its capacity so channels realized for
	// earlier (possibly larger) antenna counts stay available for reuse.
	d := p.Downlink[:cap(p.Downlink)]
	for len(d) < nAntennas {
		d = append(d, nil)
	}
	p.Downlink = d[:nAntennas]

	var buf [16]byte
	var child rng.Rand
	for i := 0; i < nAntennas; i++ {
		jitter := r.UniformRange(-g.AntennaSpread, g.AntennaSpread)
		path := base.WithAirDistanceShared(maxf(0.05, base.AirDistance+jitter))
		label := strconv.AppendInt(append(buf[:0], "dl-"...), int64(i), 10)
		r.SplitBytesInto(&child, label)
		p.Downlink[i] = fillChannel(p.Downlink[i], path, og, txGain, g.Multipath, &child)
	}
	// Reader antennas sit alongside the array; their paths see the same
	// stack with their own jitter and echoes.
	rd := base.WithAirDistanceShared(maxf(0.05, base.AirDistance+r.UniformRange(-g.AntennaSpread, g.AntennaSpread)))
	ru := base.WithAirDistanceShared(maxf(0.05, base.AirDistance+r.UniformRange(-g.AntennaSpread, g.AntennaSpread)))
	r.SplitInto(&child, "reader-down")
	p.ReaderDown = fillChannel(p.ReaderDown, rd, og, txGain, g.Multipath, &child)
	r.SplitInto(&child, "reader-up")
	p.ReaderUp = fillChannel(p.ReaderUp, ru, og, txGain, g.Multipath, &child)

	// Leakage: free-space coupling between co-located 7 dBi panels.
	leakAmp := txGain * txGain * em.FriisAmplitude(em.Wavelength(g.CIBFreq), g.ReaderStandoff)
	p.CIBLeakPerWatt = leakAmp * leakAmp
	return nil
}

// fillChannel resets a (possibly nil) channel to a fresh realization over
// path, regenerating its ray set into the retained buffer.
func fillChannel(c *em.Channel, path em.Path, og, txGain float64, mp em.MultipathProfile, rnd *rng.Rand) *em.Channel {
	if c == nil {
		c = &em.Channel{}
	}
	c.Direct = path
	c.OrientationGain = og
	c.TxGain = txGain
	c.RxGain = 1
	c.Rays = mp.GenerateRaysInto(c.Rays[:0], rnd)
	return c
}

func dbiAmp(dbi float64) float64 {
	return math.Pow(10, dbi/20)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
