// Package scenario builds the experiment geometries of IVN's evaluation:
// the tank-in-air setup (paper Fig. 7), the line-of-sight range setup
// (Fig. 8), the media sweep (Fig. 11), and the swine gastric/subcutaneous
// placements (Fig. 14). A Scenario realizes randomized per-trial channel
// sets: one downlink channel per beamformer antenna at the CIB carrier,
// plus reader downlink/uplink channels at the out-of-band carrier, plus
// the CIB→reader leakage that drives the self-jamming analysis.
package scenario

import (
	"fmt"
	"math"

	"ivn/internal/em"
	"ivn/internal/rng"
)

// Placement is one realized trial: a tag position/orientation with all
// relevant channels instantiated.
type Placement struct {
	// Downlink[i] is beamformer antenna i → sensor at the CIB carrier.
	Downlink []*em.Channel
	// ReaderDown is the reader TX antenna → sensor at the reader carrier;
	// ReaderUp is the reverse path (reciprocal geometry, independently
	// realized multipath).
	ReaderDown, ReaderUp *em.Channel
	// CIBLeakPerWatt is the fraction of each CIB chain's radiated power
	// that reaches the reader's receive antenna (same-room coupling).
	CIBLeakPerWatt float64
	// Orientation is the tag rotation drawn for this trial, radians.
	Orientation float64
	// UplinkPhaseDriftPerPeriod is the phase random-walk variance (rad²)
	// the reader link accumulates per 1 s averaging period from subject
	// motion (breathing); zero for static benches.
	UplinkPhaseDriftPerPeriod float64
	// Geom is the geometry that realized this placement, so downstream
	// consumers evaluate their chains at the scenario's actual carriers
	// instead of assuming the defaults. Read it through Geometry(), which
	// falls back to DefaultGeometry for hand-built placements.
	Geom Geometry
}

// Geometry returns the geometry that realized p. A zero Geom (a
// placement built by hand rather than by Scenario.Realize) falls back to
// DefaultGeometry, which matches the historical assumption call sites
// hard-coded.
func (p *Placement) Geometry() Geometry {
	if p.Geom.CIBFreq == 0 {
		return DefaultGeometry()
	}
	return p.Geom
}

// Scenario generates placements.
type Scenario interface {
	// Name identifies the scenario in experiment output.
	Name() string
	// Realize draws a placement with nAntennas downlink channels.
	Realize(nAntennas int, r *rng.Rand) (*Placement, error)
}

// Geometry is the shared parameter block concrete scenarios embed.
type Geometry struct {
	// CIBFreq and ReaderFreq are the carrier frequencies.
	CIBFreq, ReaderFreq float64
	// TxAntennaGainDBi applies to every beamformer/reader antenna.
	TxAntennaGainDBi float64
	// AntennaSpread is the ± range of per-antenna air-distance variation
	// (the panels occupy different positions, meters).
	AntennaSpread float64
	// Multipath describes the environment's echoes.
	Multipath em.MultipathProfile
	// ReaderStandoff is the beamformer→reader antenna distance used for
	// the leakage estimate.
	ReaderStandoff float64
	// OrientationFloor is the residual coupling of a fully cross-
	// polarized tag.
	OrientationFloor float64
	// FixedOrientation pins the tag rotation (radians) when >= 0;
	// negative draws a random orientation per trial.
	FixedOrientation float64
}

// DefaultGeometry matches the prototype: 915/880 MHz, 7 dBi panels spread
// over ±25 cm, indoor multipath, reader 1 m from the array.
func DefaultGeometry() Geometry {
	return Geometry{
		CIBFreq:          915e6,
		ReaderFreq:       880e6,
		TxAntennaGainDBi: 7,
		AntennaSpread:    0.25,
		Multipath:        em.DefaultIndoorProfile,
		ReaderStandoff:   1.0,
		OrientationFloor: 0.2,
		FixedOrientation: -1,
	}
}

// realize builds a placement for a path template: per-antenna air-distance
// jitter, shared tag orientation, independent multipath.
func (g Geometry) realize(base em.Path, nAntennas int, r *rng.Rand) (*Placement, error) {
	if nAntennas < 1 {
		return nil, fmt.Errorf("scenario: %d antennas", nAntennas)
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	orientation := g.FixedOrientation
	if orientation < 0 {
		orientation = r.Phase() / 2 // [0, π)
	}
	og := em.DipoleOrientationGain(orientation, g.OrientationFloor)
	txGain := dbiAmp(g.TxAntennaGainDBi)

	mk := func(path em.Path, rnd *rng.Rand) *em.Channel {
		c := em.NewChannel(path)
		c.TxGain = txGain
		c.OrientationGain = og
		c.Rays = g.Multipath.GenerateRays(rnd)
		return c
	}

	p := &Placement{Orientation: orientation, Geom: g}
	for i := 0; i < nAntennas; i++ {
		jitter := r.UniformRange(-g.AntennaSpread, g.AntennaSpread)
		path := base.WithAirDistance(maxf(0.05, base.AirDistance+jitter))
		p.Downlink = append(p.Downlink, mk(path, r.Split(fmt.Sprintf("dl-%d", i))))
	}
	// Reader antennas sit alongside the array; their paths see the same
	// stack with their own jitter and echoes.
	rd := base.WithAirDistance(maxf(0.05, base.AirDistance+r.UniformRange(-g.AntennaSpread, g.AntennaSpread)))
	ru := base.WithAirDistance(maxf(0.05, base.AirDistance+r.UniformRange(-g.AntennaSpread, g.AntennaSpread)))
	p.ReaderDown = mk(rd, r.Split("reader-down"))
	p.ReaderUp = mk(ru, r.Split("reader-up"))

	// Leakage: free-space coupling between co-located 7 dBi panels.
	leakAmp := txGain * txGain * em.FriisAmplitude(em.Wavelength(g.CIBFreq), g.ReaderStandoff)
	p.CIBLeakPerWatt = leakAmp * leakAmp
	return p, nil
}

func dbiAmp(dbi float64) float64 {
	return math.Pow(10, dbi/20)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
