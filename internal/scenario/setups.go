package scenario

import (
	"fmt"
	"math"

	"ivn/internal/em"
	"ivn/internal/rng"
)

// Tank is the Fig. 7 setup: the beamformer in air facing a container of
// fluid (or a slab of tissue) with the sensor at a given depth inside.
type Tank struct {
	Geometry
	// AirDistance is beamformer→container distance in meters (0.5 m in
	// the Fig. 9 experiments, 0.9 m in the Fig. 13 depth experiments).
	AirDistance float64
	// Medium fills the container.
	Medium em.Medium
	// Depth is the sensor depth inside the medium, meters.
	Depth float64
}

// NewTank builds the standard water-tank scenario.
func NewTank(airDistance float64, medium em.Medium, depth float64) *Tank {
	return &Tank{
		Geometry:    DefaultGeometry(),
		AirDistance: airDistance,
		Medium:      medium,
		Depth:       depth,
	}
}

// Name implements Scenario.
func (t *Tank) Name() string {
	return fmt.Sprintf("tank(%s, air=%.2gm, depth=%.2gcm)", t.Medium.Name, t.AirDistance, t.Depth*100)
}

// Realize implements Scenario.
func (t *Tank) Realize(nAntennas int, r *rng.Rand) (*Placement, error) {
	p := &Placement{}
	if err := t.RealizeInto(p, nAntennas, r); err != nil {
		return nil, err
	}
	return p, nil
}

// RealizeInto implements PlacementReuser: the one-layer tissue stack is
// built in the placement's retained scratch, so repeated realizations
// allocate nothing.
func (t *Tank) RealizeInto(p *Placement, nAntennas int, r *rng.Rand) error {
	base := em.Path{AirDistance: t.AirDistance}
	if t.Depth > 0 && t.Medium.Name != em.Air.Name {
		p.layers = append(p.layers[:0], em.Layer{Medium: t.Medium, Thickness: t.Depth})
		base.Layers = p.layers
	} else {
		base.AirDistance += t.Depth
	}
	return t.Geometry.realizeInto(p, base, nAntennas, r)
}

// WithDepth returns a copy at a different depth (for sweeps).
func (t *Tank) WithDepth(d float64) *Tank {
	c := *t
	c.Depth = d
	return &c
}

// Air is the Fig. 8 line-of-sight setup: sensor at a range in open air.
type Air struct {
	Geometry
	// Range is the beamformer→tag distance in meters.
	Range float64
}

// NewAir builds the line-of-sight scenario. Matching the paper's Fig. 8
// protocol (tag boxed and oriented toward the array), the tag orientation
// is pinned co-polarized; set FixedOrientation = -1 for random draws.
func NewAir(rangeMeters float64) *Air {
	g := DefaultGeometry()
	g.FixedOrientation = 0
	g.Multipath = em.LOSProfile
	return &Air{Geometry: g, Range: rangeMeters}
}

// Name implements Scenario.
func (a *Air) Name() string { return fmt.Sprintf("air(%.2gm)", a.Range) }

// Realize implements Scenario.
func (a *Air) Realize(nAntennas int, r *rng.Rand) (*Placement, error) {
	return a.Geometry.realize(em.Path{AirDistance: a.Range}, nAntennas, r)
}

// RealizeInto implements PlacementReuser.
func (a *Air) RealizeInto(p *Placement, nAntennas int, r *rng.Rand) error {
	return a.Geometry.realizeInto(p, em.Path{AirDistance: a.Range}, nAntennas, r)
}

// WithRange returns a copy at a different range.
func (a *Air) WithRange(m float64) *Air {
	c := *a
	c.Range = m
	return &c
}

// SwinePlacement selects where in the animal the sensor sits (Fig. 14).
type SwinePlacement int

// Placements from the in-vivo protocol (§6.2).
const (
	// Gastric: through skin, fat, muscle and the stomach wall into the
	// stomach ("placed in the stomach through a 3 cm incision").
	Gastric SwinePlacement = iota
	// Subcutaneous: under the skin.
	Subcutaneous
)

// String names the placement.
func (p SwinePlacement) String() string {
	if p == Gastric {
		return "gastric"
	}
	return "subcutaneous"
}

// Swine is the in-vivo scenario: a layered porcine torso with breathing
// motion and per-trial repositioning ("In each experiment, we remove the
// RFID and place it back, changing its location and orientation").
type Swine struct {
	Geometry
	// Placement selects the tissue stack.
	Placement SwinePlacement
	// AirDistanceMin/Max bound the antenna standoff ("30-80 cm lateral").
	AirDistanceMin, AirDistanceMax float64
	// BreathingDepthJitter is the ± tissue-depth variation from
	// respiration between sessions, meters.
	BreathingDepthJitter float64
	// BreathingPeriod and BreathingDisplacement model within-session
	// motion: the sensor oscillates by ±BreathingDisplacement along the
	// path every BreathingPeriod seconds, dephasing the reader's
	// coherently averaged captures.
	BreathingPeriod, BreathingDisplacement float64
}

// NewSwine builds the in-vivo scenario for a placement.
func NewSwine(p SwinePlacement) *Swine {
	return &Swine{
		Geometry:              DefaultGeometry(),
		Placement:             p,
		AirDistanceMin:        0.3,
		AirDistanceMax:        0.8,
		BreathingDepthJitter:  0.005,
		BreathingPeriod:       4.0,
		BreathingDisplacement: 0.002,
	}
}

// Name implements Scenario.
func (s *Swine) Name() string { return fmt.Sprintf("swine(%s)", s.Placement) }

// Stack returns the placement's nominal tissue stack.
func (s *Swine) Stack() []em.Layer {
	return s.AppendStack(nil)
}

// AppendStack appends the placement's nominal tissue stack to dst.
func (s *Swine) AppendStack(dst []em.Layer) []em.Layer {
	if s.Placement == Subcutaneous {
		return append(dst,
			em.Layer{Medium: em.Skin, Thickness: 0.003},
			em.Layer{Medium: em.Fat, Thickness: 0.005},
		)
	}
	// Lateral path into an 85 kg Yorkshire swine's stomach: roughly 12 cm
	// of tissue (the antennas sit "30-80 cm lateral... in line with the
	// coronal plane", §6.2).
	return append(dst,
		em.Layer{Medium: em.Skin, Thickness: 0.003},
		em.Layer{Medium: em.Fat, Thickness: 0.025},
		em.Layer{Medium: em.Muscle, Thickness: 0.045},
		em.Layer{Medium: em.StomachWall, Thickness: 0.005},
		em.Layer{Medium: em.GastricFluid, Thickness: 0.040},
	)
}

// Realize implements Scenario.
func (s *Swine) Realize(nAntennas int, r *rng.Rand) (*Placement, error) {
	p := &Placement{}
	if err := s.RealizeInto(p, nAntennas, r); err != nil {
		return nil, err
	}
	return p, nil
}

// RealizeInto implements PlacementReuser: the tissue stack is built and
// depth-adjusted in the placement's retained scratch.
func (s *Swine) RealizeInto(p *Placement, nAntennas int, r *rng.Rand) error {
	air := r.UniformRange(s.AirDistanceMin, s.AirDistanceMax)
	p.layers = s.AppendStack(p.layers[:0])
	base := em.Path{AirDistance: air, Layers: p.layers}
	// Breathing and repositioning perturb the total depth.
	jitter := r.UniformRange(-s.BreathingDepthJitter, s.BreathingDepthJitter)
	p.layers = em.SetDepth(p.layers, maxf(0.002, base.Depth()+jitter))
	base.Layers = p.layers
	if err := s.Geometry.realizeInto(p, base, nAntennas, r); err != nil {
		return err
	}
	// Within-session breathing: the round-trip path length swings by
	// ±2·displacement through tissue with phase constant β, so the link
	// phase walks between averaging periods. Per-period variance ≈ half
	// the squared per-second phase excursion.
	if s.BreathingPeriod > 0 && s.BreathingDisplacement > 0 {
		beta := em.Muscle.Beta(s.ReaderFreq)
		amp := 2 * beta * s.BreathingDisplacement // round-trip phase swing
		perSecond := amp * 2 * math.Pi / s.BreathingPeriod
		p.UplinkPhaseDriftPerPeriod = perSecond * perSecond / 2
	}
	return nil
}

// MediaSweep returns the Fig. 11 scenario list: the receive antenna in
// air, water, simulated gastric fluid, simulated intestinal fluid, and
// three animal tissues, at the Fig. 7 operating point (0.5 m standoff).
// Depth is chosen per medium so the sensor sits inside the sample: 10 cm
// into fluids, 10 cm into the 20 cm-thick tissue slabs.
func MediaSweep() []Scenario {
	media := []em.Medium{
		em.Air, em.Water, em.GastricFluid, em.IntestinalFluid,
		em.Steak, em.Bacon, em.ChickenBreast,
	}
	out := make([]Scenario, len(media))
	for i, m := range media {
		out[i] = NewTank(0.5, m, 0.10)
	}
	return out
}
