// Package link owns physical-link realization for one placement: the
// CIB downlink (offset carriers × channel coefficients → peak delivered
// power via the phasor kernel), the out-of-band reader round-trip
// (down/up coefficients with the tag antenna gain applied twice), and
// the CIB→reader leakage that self-jams the uplink. A Link implements
// session.Link, so the Gen2 state machine in ivn/internal/session drives
// real physics through it; tests script fakes against the same
// interface.
//
// Two constructors cover the two historical pipelines:
//
//   - Realize binds an existing beamformer/reader pair (the ivn.System
//     path); the leak term sums the array's actual radiated power.
//   - ForTrial builds a fresh per-trial chain from the placement's
//     geometry (the ivnsim measurement path); the leak term uses the
//     nominal n·chainAmplitude² of the experiment write-ups.
//
// The two leak expressions agree only to ~1 ulp for n ≥ 6, so each path
// keeps its own arithmetic — collapsing them would silently shift every
// committed golden table.
package link

import (
	"math"

	"ivn/internal/baseline"
	"ivn/internal/core"
	"ivn/internal/gen2"
	"ivn/internal/radio"
	"ivn/internal/reader"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/session"
	"ivn/internal/tag"
)

// Envelope scan resolution: one 1 s CIB period sampled on the half-open
// grid t ∈ [0, 1). The coarse-to-fine peak scan locates beat maxima on
// the coarse grid and refines to full resolution only around the top
// cells; both grids over-resolve the ≤200 Hz beat features of the
// paper's plan, so the refined result equals the full-resolution scan.
const (
	// ScanSamples resolves the 1 s CIB envelope period; beat features at
	// ≤200 Hz offsets span milliseconds, so 8192 points over-resolve
	// them comfortably.
	ScanSamples = 8192
	// ScanCoarse is the coarse stage of the coarse-to-fine peak scan:
	// 2048 points over the 1 s period is still ≥10× the beat bandwidth
	// of a flatness-constrained plan, so the fine-grid argmax always
	// falls inside the refined neighborhoods and the result equals the
	// full ScanSamples scan.
	ScanCoarse = 2048
	// ScanDuration is one CIB period (the paper captures 2 s, i.e. two
	// periods of the same deterministic envelope).
	ScanDuration = 1.0 //ivn:unit s
)

// DownlinkCoeffs evaluates each downlink channel at freq.
//
//ivn:unit freq Hz
func DownlinkCoeffs(p *scenario.Placement, freq float64) []complex128 {
	return DownlinkCoeffsInto(make([]complex128, 0, len(p.Downlink)), p, freq)
}

// DownlinkCoeffsInto appends each downlink channel's coefficient at freq
// to dst and returns it, for per-trial callers that retain one buffer.
//
//ivn:unit freq Hz
//ivn:hotpath
func DownlinkCoeffsInto(dst []complex128, p *scenario.Placement, freq float64) []complex128 {
	for _, c := range p.Downlink {
		//ivn:allow hotpath per-trial callers pass dst[:0] with retained capacity; append grows only on the first trial
		dst = append(dst, c.Coefficient(freq))
	}
	return dst
}

// ChainAmplitude is each transmit chain's emitted amplitude: the default
// PA driven to its 30 dBm (1 W) operating point.
//
//ivn:unit return sqrtW
func ChainAmplitude() float64 {
	pa := radio.DefaultPA()
	return pa.Amplify(pa.OperatingDrive())
}

// PeakDownlink scans one CIB envelope period for its power peak.
//
//ivn:unit return W
func PeakDownlink(bf *core.Beamformer, chans []complex128) (float64, error) {
	return baseline.PeakReceivedPowerRefined(bf.Carriers(), chans, ScanDuration, ScanCoarse, ScanSamples)
}

// Link is one placement's realized physical layer: beamformer downlink,
// out-of-band reader uplink, and the jam tone between them. It
// implements session.Link. A Link is single-exchange state: realize one
// per placement.
type Link struct {
	// Beamformer is the CIB downlink chain.
	Beamformer *core.Beamformer
	// Reader is the out-of-band uplink chain.
	Reader *reader.Reader
	// Placement is the realized trial geometry.
	Placement *scenario.Placement
	// Trace observes physical-layer events; nil is free.
	Trace *session.Trace

	peak float64 //ivn:unit W
	jam  [1]radio.ToneAt
}

// Realize binds an existing beamformer/reader pair to a placement — the
// ivn.System path. The CIB→reader jam tone uses the array's actual
// radiated-power sum.
func Realize(bf *core.Beamformer, rd *reader.Reader, p *scenario.Placement, tr *session.Trace) (*Link, error) {
	l := new(Link)
	if err := RealizeInto(l, bf, rd, p, tr); err != nil {
		return nil, err
	}
	return l, nil
}

// RealizeInto is Realize into caller-owned storage, for hot paths that
// reuse one Link value across sequential exchanges instead of allocating
// per exchange. l is fully overwritten.
func RealizeInto(l *Link, bf *core.Beamformer, rd *reader.Reader, p *scenario.Placement, tr *session.Trace) error {
	chans := DownlinkCoeffs(p, bf.CenterFreq)
	peak, err := PeakDownlink(bf, chans)
	if err != nil {
		return err
	}
	*l = Link{Beamformer: bf, Reader: rd, Placement: p, Trace: tr, peak: peak}
	l.jam[0] = radio.ToneAt{Freq: bf.CenterFreq, Power: p.CIBLeakPerWatt * bf.Array.TotalRadiatedPower()}
	if tr != nil {
		tr.Emit(session.Event{Kind: session.EvLinkRealized, Value: l.PeakPowerDBm()})
	}
	return nil
}

// ForTrial builds a fresh per-trial chain at the placement's geometry —
// the ivnsim measurement path: a default n-antenna beamformer locked
// from r.Split("cib") at the geometry's CIB carrier, and a default
// reader at the geometry's out-of-band carrier carrying the placement's
// motion-induced phase drift. The jam tone uses the nominal
// n·chainAmplitude² leak of the experiment write-ups.
func ForTrial(p *scenario.Placement, n int, tr *session.Trace, r *rng.Rand) (*Link, error) {
	g := p.Geometry()
	cfg := core.DefaultConfig()
	cfg.Antennas = n
	cfg.CenterFreq = g.CIBFreq
	bf, err := core.New(cfg, r.Split("cib"))
	if err != nil {
		return nil, err
	}
	rd := reader.New()
	rd.TxFreq = g.ReaderFreq
	rd.RX = radio.NewReceiver(g.ReaderFreq)
	rd.PhaseDriftPerPeriod = p.UplinkPhaseDriftPerPeriod
	chans := DownlinkCoeffs(p, g.CIBFreq)
	peak, err := PeakDownlink(bf, chans)
	if err != nil {
		return nil, err
	}
	l := &Link{Beamformer: bf, Reader: rd, Placement: p, Trace: tr, peak: peak}
	amp := ChainAmplitude()
	l.jam[0] = radio.ToneAt{Freq: g.CIBFreq, Power: p.CIBLeakPerWatt * float64(n) * amp * amp}
	if tr != nil {
		tr.Emit(session.Event{Kind: session.EvLinkRealized, Value: l.PeakPowerDBm()})
	}
	return l, nil
}

// TrialKit amortizes ForTrial's per-trial chain across many trials: the
// beamformer is relocked instead of rebuilt when the antenna count and
// carrier are unchanged (core.New's only randomness is the PLL lock, so
// Relock reproduces its phase stream exactly), the reader and its
// receiver are reset in place, and coefficient/carrier buffers are
// retained. ForTrial draws exactly the variate sequence of the package
// function and yields an equivalent Link (TestTrialKitMatchesForTrial);
// the returned Link aliases kit storage, so it is valid until the next
// ForTrial call and a kit must not be shared between concurrent trials.
type TrialKit struct {
	bf    *core.Beamformer
	rd    *reader.Reader
	link  Link
	chans []complex128
	carr  []radio.Carrier
	child rng.Rand
}

// ForTrial is the kit counterpart of the package-level ForTrial.
func (k *TrialKit) ForTrial(p *scenario.Placement, n int, tr *session.Trace, r *rng.Rand) (*Link, error) {
	g := p.Geometry()
	r.SplitInto(&k.child, "cib")
	//ivn:allow floatcmp exact cache-key identity check: any difference must force a rebuild
	if k.bf != nil && k.bf.N() == n && k.bf.CenterFreq == g.CIBFreq {
		k.bf.Relock(&k.child)
	} else {
		cfg := core.DefaultConfig()
		cfg.Antennas = n
		cfg.CenterFreq = g.CIBFreq
		bf, err := core.New(cfg, &k.child)
		if err != nil {
			return nil, err
		}
		k.bf = bf
	}
	if k.rd == nil {
		k.rd = reader.New()
	}
	k.rd.TxFreq = g.ReaderFreq
	//ivn:allow floatcmp exact cache-key identity check: any difference must force a receiver rebuild
	if k.rd.RX == nil || k.rd.RX.Center != g.ReaderFreq {
		k.rd.RX = radio.NewReceiver(g.ReaderFreq)
	}
	k.rd.PhaseDriftPerPeriod = p.UplinkPhaseDriftPerPeriod
	k.chans = DownlinkCoeffsInto(k.chans[:0], p, g.CIBFreq)
	k.carr = k.bf.AppendCarriers(k.carr[:0])
	peak, err := baseline.PeakReceivedPowerRefined(k.carr, k.chans, ScanDuration, ScanCoarse, ScanSamples)
	if err != nil {
		return nil, err
	}
	k.link = Link{Beamformer: k.bf, Reader: k.rd, Placement: p, Trace: tr, peak: peak}
	amp := ChainAmplitude()
	k.link.jam[0] = radio.ToneAt{Freq: g.CIBFreq, Power: p.CIBLeakPerWatt * float64(n) * amp * amp}
	if tr != nil {
		tr.Emit(session.Event{Kind: session.EvLinkRealized, Value: k.link.PeakPowerDBm()})
	}
	return &k.link, nil
}

// PeakPower is the CIB envelope peak at the sensor, isotropic watts.
//
//ivn:unit return W
func (l *Link) PeakPower() float64 { return l.peak }

// PeakPowerDBm is the envelope peak in dBm.
//
//ivn:unit return dBm
func (l *Link) PeakPowerDBm() float64 { return 10*math.Log10(l.peak) + 30 }

// Jam returns the CIB→reader leakage tone set.
func (l *Link) Jam() []radio.ToneAt { return l.jam[:] }

// RoundTrip is the reader→tag→reader amplitude gain for a tag model at
// this placement; the tag's antenna gain applies twice (receiving the
// reader carrier and re-radiating the modulated reflection).
func (l *Link) RoundTrip(m tag.Model) complex128 {
	tagG := m.AntennaAmplitudeGain()
	return reader.RoundTripGain(l.Reader.TxAmplitude,
		l.Placement.ReaderDown.Coefficient(l.Reader.TxFreq),
		l.Placement.ReaderUp.Coefficient(l.Reader.TxFreq)) * complex(tagG*tagG, 0)
}

// DecodableRN16 is the fast link-budget predicate: whether a model's
// RN16 backscatter closes the uplink budget at this placement without
// synthesizing waveforms.
func (l *Link) DecodableRN16(m tag.Model) bool {
	modAmp := reader.ModulationAmplitude(m.BackscatterGain, m.BackscatterDepth)
	return l.Reader.DecodableRN16(l.RoundTrip(m), modAmp, l.jam[:])
}

// Transmit implements session.Link: the command goes out on every CIB
// chain (flatness-checked), and the trace clock advances past its
// on-air duration. Only the duration matters here — the tag decodes
// analytically from the link budget — so Transmit runs the beamformer's
// air-time path (identical validation, no envelope synthesis), which is
// what removes the multi-megabyte envelope floor from every exchange.
func (l *Link) Transmit(cmd gen2.Command, preamble bool) error {
	dur, err := l.Beamformer.CommandAirTime(cmd, preamble)
	if err != nil {
		return err
	}
	if l.Trace != nil {
		l.Trace.Advance(dur)
		l.Trace.Emit(session.Event{Kind: session.EvCommandSent, Cmd: cmd.Type().String()})
	}
	return nil
}

// TransmitSelect implements session.Link for the §3.7 Select+Query
// compound frame, through the same envelope-free air-time path as
// Transmit.
func (l *Link) TransmitSelect(sel *gen2.Select, q *gen2.Query) error {
	selDur, qDur, err := l.Beamformer.SelectQueryAirTime(sel, q)
	if err != nil {
		return err
	}
	if l.Trace != nil {
		l.Trace.Advance(selDur + qDur)
		l.Trace.Emit(session.Event{Kind: session.EvCommandSent, Cmd: "Select+Query"})
	}
	return nil
}

// averagingPeriods resolves the reader's coherent-averaging depth.
func (l *Link) averagingPeriods() int {
	if l.Reader.AveragingPeriods == 0 {
		return reader.DefaultAveragingPeriods
	}
	return l.Reader.AveragingPeriods
}

// Decode implements session.Link: synthesize the tag's backscatter,
// push it through the out-of-band reader with the jam tone, and compare
// against the true bits. The decode occupies AveragingPeriods × 1 s of
// sim time (each averaged capture spans one CIB envelope period).
func (l *Link) Decode(tg *tag.Tag, reply gen2.Reply, label string, r *rng.Rand) (session.Decode, bool, error) {
	bs, err := tg.BackscatterWaveform(reply, l.Reader.SamplesPerHalfBit)
	if err != nil {
		return session.Decode{}, false, err
	}
	dr, err := l.Reader.DecodeUplink(bs, l.RoundTrip(tg.Model), l.jam[:], len(reply.Bits), r.Split(label))
	ok := err == nil && dr.Bits.Equal(reply.Bits)
	if l.Trace != nil {
		l.Trace.Advance(float64(l.averagingPeriods()) * ScanDuration)
		e := session.Event{Kind: session.EvReplyDecoded, Label: label, OK: ok}
		if ok {
			e.Value = dr.Correlation
		}
		l.Trace.Emit(e)
	}
	if !ok {
		return session.Decode{}, false, nil
	}
	return session.Decode{Bits: dr.Bits, Correlation: dr.Correlation}, true, nil
}

// DecodeWithRetry is Decode through the reader's bounded capture-retry
// path (PR 3 recovery): up to 1+retries attempts, each a fresh noise
// realization, with fault deciding per-attempt capture corruption.
// exchange identifies this decode for the fault layer. Note the retry
// path derives its noise as r.Split(label).Split("attempt-<i>") — a
// different stream than plain Decode — so callers switch paths only
// when retry/fault behavior is actually requested.
func (l *Link) DecodeWithRetry(tg *tag.Tag, reply gen2.Reply, exchange, retries int, fault reader.DecodeFault, label string, r *rng.Rand) (session.Decode, bool, error) {
	bs, err := tg.BackscatterWaveform(reply, l.Reader.SamplesPerHalfBit)
	if err != nil {
		return session.Decode{}, false, err
	}
	rr, err := l.Reader.DecodeUplinkWithRetry(exchange, retries, fault, bs, l.RoundTrip(tg.Model), l.jam[:], len(reply.Bits), r.Split(label))
	if err != nil {
		return session.Decode{}, false, err
	}
	ok := rr.Succeeded() && rr.Result.Bits.Equal(reply.Bits)
	if l.Trace != nil {
		for i, att := range rr.Attempts {
			l.Trace.Advance(float64(l.averagingPeriods()) * ScanDuration)
			if i > 0 {
				l.Trace.Emit(session.Event{Kind: session.EvRetryTaken, Cmd: "decode", Attempt: i, Outcome: att.String()})
			}
		}
		e := session.Event{Kind: session.EvReplyDecoded, Label: label, OK: ok}
		if ok {
			e.Value = rr.Result.Correlation
		}
		l.Trace.Emit(e)
	}
	if !ok {
		return session.Decode{}, false, nil
	}
	return session.Decode{Bits: rr.Result.Bits, Correlation: rr.Result.Correlation}, true, nil
}
