package link

import (
	"fmt"
	"math"
	"testing"

	"ivn/internal/gen2"
	"ivn/internal/reader"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/session"
	"ivn/internal/tag"
)

// mcDecodeRate runs DecodeUplink over trials independent noise draws at a
// link gain scaled to hit the target post-averaging SNR, returning the
// fraction of exact decodes.
func mcDecodeRate(t *testing.T, rd *reader.Reader, snr float64, trials int, r *rng.Rand) float64 {
	t.Helper()
	tg, err := tag.New(tag.StandardTag(), []byte{0x12, 0x34}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tg.UpdatePower(tg.Model.MinPeakPower() * 2)
	reply := tg.HandleCommand(&gen2.Query{Q: 0})
	if reply.Kind != gen2.ReplyRN16 {
		t.Fatalf("reply = %s", reply.Kind)
	}
	bs, err := tg.BackscatterWaveform(reply, rd.SamplesPerHalfBit)
	if err != nil {
		t.Fatal(err)
	}
	// Solve |linkGain| for the target SNR: snr = (|g|·modAmp)²·K/noise.
	noise := rd.RX.NoiseFloor
	modAmp := reader.ModulationAmplitude(tg.Model.BackscatterGain, tg.Model.BackscatterDepth)
	k := float64(rd.AveragingPeriods)
	g := complex(math.Sqrt(snr*noise/k)/modAmp, 0)
	decoded := 0
	for i := 0; i < trials; i++ {
		dr, err := rd.DecodeUplink(bs, g, nil, len(reply.Bits), r.Split(fmt.Sprintf("mc-%d", i)))
		if err == nil && dr.Bits.Equal(reply.Bits) {
			decoded++
		}
	}
	return float64(decoded) / float64(trials)
}

// inventoryRates runs paired small-population inventories over realized
// swine links with the backscatter gain scaled into the decode
// waterfall, through either the sample-level DSPChannel or the
// calibrated EventChannel, and returns the aggregate read fraction and
// collision rate. Both variants derive every stream from an identical
// rng lineage, so they face the same placements and slot draws and
// differ only in how reply decodes are resolved.
func inventoryRates(t *testing.T, useDSP bool, trials int) (readFrac, collisionRate float64) {
	t.Helper()
	const nTags = 6
	const antennas = 8
	const targetSNR = 0.95 // RN16 decode probability ≈ 0.7: discriminating
	sc := scenario.NewSwine(scenario.Subcutaneous)
	parent := rng.New(31)
	totalRead, totalTags := 0, 0
	totalColl, totalSlots := 0, 0
	for trial := 0; trial < trials; trial++ {
		r := parent.Split(fmt.Sprintf("trial-%d", trial))
		p, err := sc.Realize(antennas, r.Split("placement"))
		if err != nil {
			t.Fatal(err)
		}
		lk, err := ForTrial(p, antennas, nil, r)
		if err != nil {
			t.Fatal(err)
		}
		model := tag.StandardTag()
		base := lk.EventBudget(model)
		if !(base.SNR > 0) || math.IsInf(base.SNR, 1) {
			t.Fatalf("trial %d: unusable base budget %+v", trial, base)
		}
		// SNR scales with the squared modulation amplitude, so scaling the
		// backscatter gain moves both models' budgets identically.
		model.BackscatterGain *= math.Sqrt(targetSNR / base.SNR)
		tags := make([]*tag.Tag, nTags)
		logics := make([]*gen2.TagLogic, nTags)
		models := make([]tag.Model, nTags)
		for i := range tags {
			tg, err := tag.New(model, []byte{0xE2, 0x00, byte(i), 0x33}, r.Split(fmt.Sprintf("tag-%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			tags[i] = tg
			logics[i] = tg.Logic
			models[i] = model
		}
		ic := session.NewInventoryController(gen2.S0)
		ic.InitialQ = 3
		if useDSP {
			ic.Channel = &DSPChannel{Link: lk, Tags: tags}
		} else {
			ic.Channel = lk.EventChannel(models)
		}
		rr := r.Split("rounds")
		seen := map[string]bool{}
		for round := 0; round < 4 && len(seen) < nTags; round++ {
			stats, err := ic.RunRound(logics, rr.Split(fmt.Sprintf("round-%d", round)))
			if err != nil {
				t.Fatal(err)
			}
			for _, epc := range stats.EPCs {
				seen[string(epc)] = true
			}
			totalColl += stats.Collisions
			totalSlots += stats.Slots
		}
		totalRead += len(seen)
		totalTags += nTags
	}
	if totalSlots == 0 {
		t.Fatal("no slots observed")
	}
	return float64(totalRead) / float64(totalTags), float64(totalColl) / float64(totalSlots)
}

// TestEventChannelMatchesDSPOnSmallPopulations is the acceptance
// contract of the fidelity switch: on populations the sample-level path
// can still afford (N ≤ 8), the event model must reproduce the DSP
// model's inventory behavior — aggregate read fraction and collision
// rate — under identical seeds.
func TestEventChannelMatchesDSPOnSmallPopulations(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo comparison")
	}
	const trials = 40
	const tol = 0.1
	dspRead, dspColl := inventoryRates(t, true, trials)
	evRead, evColl := inventoryRates(t, false, trials)
	t.Logf("read fraction: dsp=%.3f event=%.3f   collision rate: dsp=%.3f event=%.3f",
		dspRead, evRead, dspColl, evColl)
	if math.Abs(dspRead-evRead) > tol {
		t.Errorf("read fraction: DSP %.3f vs event %.3f (tol %.2f)", dspRead, evRead, tol)
	}
	if math.Abs(dspColl-evColl) > tol {
		t.Errorf("collision rate: DSP %.3f vs event %.3f (tol %.2f)", dspColl, evColl, tol)
	}
}

// TestDSPChannelInventory pins the sample-level channel end to end: at
// the standard (unscaled) budget every decode closes, the full
// population reads, and — the DSP chain having no capture model —
// collided slots never resolve by capture.
func TestDSPChannelInventory(t *testing.T) {
	const nTags = 4
	const antennas = 8
	r := rng.New(17)
	p, err := scenario.NewSwine(scenario.Subcutaneous).Realize(antennas, r.Split("placement"))
	if err != nil {
		t.Fatal(err)
	}
	lk, err := ForTrial(p, antennas, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	tags := make([]*tag.Tag, nTags)
	logics := make([]*gen2.TagLogic, nTags)
	for i := range tags {
		tg, err := tag.New(tag.StandardTag(), []byte{0xE2, 0x00, byte(i), 0x44}, r.Split(fmt.Sprintf("tag-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		tags[i] = tg
		logics[i] = tg.Logic
	}
	ic := session.NewInventoryController(gen2.S0)
	ic.InitialQ = 2
	ic.Channel = &DSPChannel{Link: lk, Tags: tags}
	epcs, err := ic.InventoryAll(logics, 6, r.Split("rounds"))
	if err != nil {
		t.Fatalf("InventoryAll: %v (read %d)", err, len(epcs))
	}
	if len(epcs) != nTags {
		t.Fatalf("read %d of %d tags", len(epcs), nTags)
	}
	if got := (&DSPChannel{Link: lk, Tags: tags}).Capture([]int{0, 1}, r.Split("cap")); got != -1 {
		t.Fatalf("DSP capture resolved a collision: winner %d", got)
	}
}

// TestDecodeProbabilityMatchesDSP is the calibration contract of the
// event-level channel: session.DecodeProbability must track the
// Monte-Carlo decode rate of the full DSP chain across the waterfall
// region, at the reader's default operating point.
func TestDecodeProbabilityMatchesDSP(t *testing.T) {
	rd := reader.New()
	r := rng.New(9)
	const trials = 500
	const tol = 0.06
	for _, snr := range []float64{0.4, 0.6, 0.8, 8.0 / 9.0, 1.0, 1.2, 1.5, 2.0, 3.0} {
		got := mcDecodeRate(t, rd, snr, trials, r.Split(fmt.Sprintf("snr-%g", snr)))
		want := session.DecodeProbability(snr, 16, rd.SamplesPerHalfBit, rd.CorrelationThreshold)
		t.Logf("snr=%.3f  dsp=%.3f  analytic=%.3f  diff=%+.3f", snr, got, want, got-want)
		if math.Abs(got-want) > tol {
			t.Errorf("snr %.3f: DSP decode rate %.3f vs analytic %.3f (tol %.2f)", snr, got, want, tol)
		}
	}
}
