package link

import (
	"testing"

	"ivn/internal/em"
	"ivn/internal/rng"
	"ivn/internal/scenario"
)

// TestTrialKitMatchesForTrial pins the kit path to the package-level
// ForTrial: same parent stream, same placement → identical link state,
// identical parent advancement, across repeated trials and a change of
// antenna count (which forces the kit's rebuild branch as well as its
// relock branch).
func TestTrialKitMatchesForTrial(t *testing.T) {
	sc := scenario.NewTank(0.5, em.Water, 0.1)
	var kit TrialKit
	r1 := rng.New(42)
	r2 := rng.New(42)
	for trial := 0; trial < 6; trial++ {
		n := 4
		if trial >= 3 {
			n = 8
		}
		p1, err := sc.Realize(n, r1.Split("place"))
		if err != nil {
			t.Fatal(err)
		}
		p2, err := sc.Realize(n, r2.Split("place"))
		if err != nil {
			t.Fatal(err)
		}
		want, err := ForTrial(p1, n, nil, r1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := kit.ForTrial(p2, n, nil, r2)
		if err != nil {
			t.Fatal(err)
		}
		if got.peak != want.peak {
			t.Fatalf("trial %d: kit peak %v != ForTrial peak %v", trial, got.peak, want.peak)
		}
		if got.jam != want.jam {
			t.Fatalf("trial %d: kit jam %v != ForTrial jam %v", trial, got.jam, want.jam)
		}
		if got.Beamformer.N() != want.Beamformer.N() || got.Beamformer.CenterFreq != want.Beamformer.CenterFreq {
			t.Fatalf("trial %d: beamformer mismatch", trial)
		}
		wc := want.Beamformer.Carriers()
		for i, c := range got.Beamformer.Carriers() {
			if c != wc[i] {
				t.Fatalf("trial %d: carrier %d: kit %+v != ForTrial %+v", trial, i, c, wc[i])
			}
		}
		if got.Reader.TxFreq != want.Reader.TxFreq ||
			got.Reader.PhaseDriftPerPeriod != want.Reader.PhaseDriftPerPeriod ||
			got.Reader.RX.Center != want.Reader.RX.Center {
			t.Fatalf("trial %d: reader mismatch", trial)
		}
		// Parent streams must stay in lockstep after each trial.
		if a, b := r1.Uint64(), r2.Uint64(); a != b {
			t.Fatalf("trial %d: parent streams diverged: %x vs %x", trial, a, b)
		}
	}
}

// TestDownlinkCoeffsIntoMatches pins the append variant to DownlinkCoeffs.
func TestDownlinkCoeffsIntoMatches(t *testing.T) {
	sc := scenario.NewTank(0.5, em.Water, 0.1)
	p, err := sc.Realize(6, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	want := DownlinkCoeffs(p, 915e6)
	got := DownlinkCoeffsInto(make([]complex128, 0, 1), p, 915e6)
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("coeff %d: %v != %v", i, got[i], want[i])
		}
	}
}
