package link

import (
	"fmt"

	"ivn/internal/gen2"
	"ivn/internal/reader"
	"ivn/internal/rng"
	"ivn/internal/session"
	"ivn/internal/tag"
)

// DSPChannel adapts a realized Link to session.Channel at full sample
// fidelity: every reply capture synthesizes the tag's backscatter
// waveform and runs it through the out-of-band reader chain, exactly as
// Link.Decode does for single-tag exchanges. It is the calibration
// reference for session.EventChannel (see
// TestEventChannelMatchesDSPOnSmallPopulations) and the fidelity ceiling
// of the inventory controller — usable to N≈10 tags before waveform
// synthesis dominates the trial budget.
type DSPChannel struct {
	// Link is the realized physical link shared by the population.
	Link *Link
	// Tags holds the physical tag per population index, aligned with the
	// TagLogic slice handed to the controller.
	Tags []*tag.Tag

	// n numbers decode captures so every draw gets a unique noise stream
	// from the round rng, across all rounds of an inventory.
	n int
}

var _ session.Channel = (*DSPChannel)(nil)

// DecodeReply implements session.Channel by synthesizing and decoding
// the reply waveform. A capture the reader rejects (saturation, failed
// preamble correlation, bit mismatch) is OK=false; only waveform
// synthesis failure — a protocol invariant violation — is an error.
func (c *DSPChannel) DecodeReply(tagIndex int, reply gen2.Reply, exchange string, r *rng.Rand) (session.ChannelDecode, error) {
	if tagIndex < 0 || tagIndex >= len(c.Tags) {
		return session.ChannelDecode{}, fmt.Errorf("link: tag index %d outside population (%d tags)", tagIndex, len(c.Tags))
	}
	tg := c.Tags[tagIndex]
	bs, err := tg.BackscatterWaveform(reply, c.Link.Reader.SamplesPerHalfBit)
	if err != nil {
		return session.ChannelDecode{}, err
	}
	label := fmt.Sprintf("%s-%d", exchange, c.n)
	c.n++
	dr, err := c.Link.Reader.DecodeUplink(bs, c.Link.RoundTrip(tg.Model), c.Link.jam[:], len(reply.Bits), r.Split(label))
	if err != nil || !dr.Bits.Equal(reply.Bits) {
		return session.ChannelDecode{}, nil
	}
	return session.ChannelDecode{OK: true, Correlation: dr.Correlation}, nil
}

// Capture implements session.Channel: the sample-level chain has no
// capture model — superimposed FM0 waveforms fail the preamble
// correlation — so every collision is unresolvable, matching what
// DecodeUplink would report for the summed backscatter.
func (c *DSPChannel) Capture(responders []int, r *rng.Rand) int { return -1 }

// ReceiveSeconds implements session.Channel: one capture spans the
// reader's coherent-averaging window of CIB envelope periods.
func (c *DSPChannel) ReceiveSeconds() float64 {
	return float64(c.Link.averagingPeriods()) * ScanDuration
}

// EventBudget reduces this link's budget for a tag model to the scalars
// session.EventChannel consumes, through the same receiver math as
// DecodableRN16.
func (l *Link) EventBudget(m tag.Model) session.TagBudget {
	modAmp := reader.ModulationAmplitude(m.BackscatterGain, m.BackscatterDepth)
	snr, rssi := l.Reader.EventBudget(l.RoundTrip(m), modAmp, l.jam[:])
	return session.TagBudget{SNR: snr, RSSI: rssi}
}

// EventChannel builds the calibrated event-level channel for a
// population of tag models at this link, carrying over the reader's FM0
// resolution, correlation threshold, and receive window so the event
// model's decode probabilities answer the same question the DSP chain
// answers per waveform. CaptureRatio is left zero (capture disabled);
// population experiments opt in explicitly.
func (l *Link) EventChannel(models []tag.Model) *session.EventChannel {
	ec := &session.EventChannel{
		Budgets:           make([]session.TagBudget, len(models)),
		SamplesPerHalfBit: l.Reader.SamplesPerHalfBit,
		Threshold:         l.Reader.CorrelationThreshold,
		DecodeSeconds:     float64(l.averagingPeriods()) * ScanDuration,
	}
	for i, m := range models {
		ec.Budgets[i] = l.EventBudget(m)
	}
	return ec
}
