package ivnsim

import (
	"fmt"
	"math"

	"ivn/internal/engine"
	"ivn/internal/gen2"
	"ivn/internal/link"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/session"
	"ivn/internal/tag"
)

// Population experiments: dense-tag inventory through the event-level
// channel (session.EventChannel). The sample-level DSP path tops out
// around ten tags per trial; the calibrated event model — pinned to the
// DSP chain by TestEventChannelMatchesDSPOnSmallPopulations — converts
// each tag's realized link budget into per-slot decode, collision and
// capture draws, so populations of a thousand tags per reader session
// run in seconds. This is the fidelity switch of ROADMAP item 2 applied
// to the paper's multi-sensor story (§3.7).

func init() {
	register(Experiment{
		ID:    "population",
		Title: "Inventory throughput and fairness vs tag population (event-level channel)",
		Paper: "scaling of the §3.7 multi-sensor regime beyond the prototype's population (no direct figure)",
		Run:   runPopulation,
	})
	register(Experiment{
		ID:    "adaptiveq",
		Title: "Adaptive-Q convergence at N=1000: floating-Q vs per-sweep Schoute",
		Paper: "collision-avoidance ablation for the §3.7 multi-sensor regime (no direct figure)",
		Run:   runAdaptiveQ,
	})
}

const (
	// popAntennas matches the prototype's 8-chain array.
	popAntennas = 8
	// popShadowDB is the per-tag lognormal shadowing spread (dB standard
	// deviation) applied to the realized base budget: tags at one
	// placement do not share a single link budget in vivo — depth and
	// orientation scatter both their SNR and their backscatter RSSI, and
	// the RSSI spread is what makes the capture effect bite.
	popShadowDB = 4.0
	// popCaptureRatio is the capture-effect dominance threshold (linear
	// power, ≈3 dB): literature values for FM0 backscatter sit at 3-6 dB.
	popCaptureRatio = 2.0
	// popTargetSNR pins the median tag at the decode waterfall's edge —
	// the regime the event model is test-calibrated in — so the ±4 dB
	// shadowing spread separates tags that read first try from tags that
	// need several rounds, and the read/fairness columns discriminate.
	popTargetSNR = 1.2
	// popRounds is the inventory round budget per trial.
	popRounds = 4
)

// popTrialResult aggregates one inventory trial over a shadowed
// population. Fields are exported because journaled runs serialize
// samples to JSONL (unexported fields would silently vanish — the
// engine's round-trip guard rejects such types).
type popTrialResult struct {
	Read, Total         int
	Slots, Commands     int
	Singles, Captures   int
	Collisions, Empties int
	QueryAdjusts        int
	Fairness            float64
	FinalQ              float64
}

// populationChannel realizes one swine placement, reduces it to an
// event-level channel, and spreads the base budget over n tags with
// lognormal shadowing. The tag logics ride alongside, index-aligned
// with the budget table.
func populationChannel(n int, r *rng.Rand) (*session.EventChannel, []*gen2.TagLogic, error) {
	p, err := scenario.NewSwine(scenario.Subcutaneous).Realize(popAntennas, r.Split("placement"))
	if err != nil {
		return nil, nil, err
	}
	lk, err := link.ForTrial(p, popAntennas, nil, r)
	if err != nil {
		return nil, nil, err
	}
	base := lk.EventBudget(tag.StandardTag())
	if !(base.SNR > 0) {
		return nil, nil, fmt.Errorf("ivnsim: unusable base budget (snr %g) at realized placement", base.SNR)
	}
	// Normalize the realized budget so the median tag sits at the target
	// SNR; scaling SNR and RSSI together preserves every capture-effect
	// power ratio.
	norm := popTargetSNR / base.SNR
	ec := lk.EventChannel(nil)
	ec.CaptureRatio = popCaptureRatio
	ec.Budgets = make([]session.TagBudget, n)
	shadow := r.Split("shadow")
	logics := make([]*gen2.TagLogic, n)
	for i := range logics {
		// Lognormal shadowing scales signal power, so SNR and RSSI move
		// together per tag.
		f := norm * math.Pow(10, shadow.NormFloat64()*popShadowDB/10)
		ec.Budgets[i] = session.TagBudget{SNR: base.SNR * f, RSSI: base.RSSI * f}
		tl, err := gen2.NewTagLogic([]byte{0xE2, byte(i >> 8), byte(i), 0x20}, r.Split(fmt.Sprintf("tag-%d", i)))
		if err != nil {
			return nil, nil, err
		}
		logics[i] = tl
	}
	return ec, logics, nil
}

// runPopulationTrial runs one multi-round inventory over a shadowed
// population of n tags. floating selects the Annex-D floating-Q recovery
// stack; otherwise the controller re-sizes Q per sweep from the Schoute
// backlog estimate only.
func runPopulationTrial(n int, initialQ byte, floating bool, maxRounds, maxCommands int, tr *session.Trace, r *rng.Rand) (popTrialResult, error) {
	res := popTrialResult{Total: n}
	ec, logics, err := populationChannel(n, r)
	if err != nil {
		return res, err
	}
	ic := session.NewInventoryController(gen2.S0)
	ic.InitialQ = initialQ
	ic.MaxCommands = maxCommands
	ic.Channel = ec
	ic.Trace = tr
	if floating {
		ic.Recovery = session.DefaultRecovery()
	}
	// readRound records the 1-indexed round each tag was first read in —
	// the per-tag service rate the fairness index is computed over.
	readRound := map[string]int{}
	roundR := r.Split("rounds")
	for round := 0; round < maxRounds && len(readRound) < n; round++ {
		stats, err := ic.RunRound(logics, roundR.Split(fmt.Sprintf("round-%d", round)))
		if err != nil {
			return res, err
		}
		res.Slots += stats.Slots
		res.Commands += stats.Commands
		res.Singles += stats.Singles
		res.Captures += stats.Captures
		res.Collisions += stats.Collisions
		res.Empties += stats.Empties
		res.QueryAdjusts += stats.QueryAdjusts
		res.FinalQ = stats.FinalQ
		for _, epc := range stats.EPCs {
			if _, ok := readRound[string(epc)]; !ok {
				readRound[string(epc)] = round + 1
			}
		}
	}
	res.Read = len(readRound)
	res.Fairness = jainFairness(logics, readRound)
	return res, nil
}

// jainFairness is Jain's index over per-tag service rates: a tag read in
// round k gets rate 1/k, an unread tag rate 0. 1.0 means every tag was
// served in the same round; n_read/n when reads are uneven or partial.
func jainFairness(logics []*gen2.TagLogic, readRound map[string]int) float64 {
	var sum, sumSq float64
	for _, tl := range logics {
		if k, ok := readRound[string(tl.EPC())]; ok && k > 0 {
			x := 1 / float64(k)
			sum += x
			sumSq += x * x
		}
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(logics)) * sumSq)
}

// populationSizes is the population sweep: quick mode drops the
// mid-size point, keeping both the small end (where the event model is
// test-calibrated against DSP) and the N=1000 headline.
func populationSizes(quick bool) []int {
	if quick {
		return []int{16, 256, 1000}
	}
	return []int{16, 64, 256, 1000}
}

func runPopulation(cfg Config) (*engine.Result, error) {
	trials := cfg.trials(6, 2)
	res := engine.NewResult("population", "Inventory vs population size (event-level channel, subcutaneous swine, 8-antenna CIB)",
		engine.Col("tags", ""), engine.Col("read", ""), engine.Col("slots/tag", ""), engine.Col("cmds/tag", ""),
		engine.Col("efficiency", ""), engine.Col("collision", ""), engine.Col("capture", ""), engine.Col("fairness", ""), engine.Col("incomplete", ""))
	for _, n := range populationSizes(cfg.Quick) {
		n := n
		label := fmt.Sprintf("population-%d", n)
		maxCommands := 12*n + 256
		results, err := engine.TrialsCtx(cfg.Context(), cfg.Limits, cfg.Seed, label, trials, func(trial int, r *rng.Rand) (popTrialResult, error) {
			var tr *session.Trace
			if cfg.Trace != nil {
				span, commit := cfg.Trace.Span(fmt.Sprintf("%s/%04d", label, trial))
				defer commit()
				tr = span
			}
			return runPopulationTrial(n, 4, true, popRounds, maxCommands, tr, r)
		})
		if err != nil {
			return nil, err
		}
		var read, total, slots, cmds, singles, captures, collisions int
		var fairness float64
		incomplete := 0
		for _, tr := range results {
			read += tr.Read
			total += tr.Total
			slots += tr.Slots
			cmds += tr.Commands
			singles += tr.Singles
			captures += tr.Captures
			collisions += tr.Collisions
			fairness += tr.Fairness
			if tr.Read < tr.Total {
				incomplete++
			}
		}
		res.AddRow(
			engine.Number("%d", float64(n)),
			engine.Tuple("%d/%d (%.1f%%)", float64(read), float64(total), 100*float64(read)/float64(total)),
			engine.Number("%.2f", float64(slots)/float64(total)),
			engine.Number("%.2f", float64(cmds)/float64(total)),
			engine.Number("%.3f", float64(singles+captures)/float64(slots)),
			engine.Number("%.3f", float64(collisions)/float64(slots)),
			engine.Number("%.3f", float64(captures)/float64(slots)),
			engine.Number("%.3f", fairness/float64(trials)),
			engine.Counts(incomplete, trials),
		)
	}
	res.AddNote("event-level channel calibrated against the DSP chain (see TestEventChannelMatchesDSPOnSmallPopulations)")
	res.AddNote("per-tag lognormal shadowing sigma %g dB over the realized base budget; capture ratio %g (%.0f dB)", popShadowDB, popCaptureRatio, 10*math.Log10(popCaptureRatio))
	res.AddNote("floating-Q recovery on; %d rounds per trial; fairness = Jain's index over 1/(first-read round)", popRounds)
	return res, nil
}

// adaptiveQPoint is one (policy, initial Q) cell of the convergence
// ablation.
type adaptiveQPoint struct {
	floating bool
	initialQ byte
}

func (p adaptiveQPoint) policy() string {
	if p.floating {
		return "floating"
	}
	return "schoute"
}

func runAdaptiveQ(cfg Config) (*engine.Result, error) {
	const n = 1000
	trials := cfg.trials(4, 1)
	points := []adaptiveQPoint{
		{floating: true, initialQ: 0},
		{floating: true, initialQ: 4},
		{floating: true, initialQ: 10},
		{floating: true, initialQ: 15},
		{floating: false, initialQ: 4},
		{floating: false, initialQ: 10},
	}
	res := engine.NewResult("adaptiveq", fmt.Sprintf("Adaptive-Q convergence at N=%d (event-level channel, subcutaneous swine)", n),
		engine.Col("policy", ""), engine.Col("Q0", ""), engine.Col("read", ""), engine.Col("cmds", ""), engine.Col("slots", ""),
		engine.Col("efficiency", ""), engine.Col("adjusts", ""), engine.Col("captures", ""), engine.Col("finalQ", ""))
	for _, pt := range points {
		pt := pt
		// The stream label excludes the policy and starting Q, pairing the
		// cells: every point faces the same placements, shadowing draws and
		// tag RNGs, and differs only in reader-side Q control.
		results, err := engine.TrialsCtx(cfg.Context(), cfg.Limits, cfg.Seed, "adaptiveq", trials, func(trial int, r *rng.Rand) (popTrialResult, error) {
			var tr *session.Trace
			if cfg.Trace != nil {
				span, commit := cfg.Trace.Span(fmt.Sprintf("adaptiveq-%s-q%d/%04d", pt.policy(), pt.initialQ, trial))
				defer commit()
				tr = span
			}
			return runPopulationTrial(n, pt.initialQ, pt.floating, 2, 16384, tr, r)
		})
		if err != nil {
			return nil, err
		}
		var read, total, slots, cmds, singles, captures, adjusts int
		var finalQ float64
		for _, tr := range results {
			read += tr.Read
			total += tr.Total
			slots += tr.Slots
			cmds += tr.Commands
			singles += tr.Singles
			captures += tr.Captures
			adjusts += tr.QueryAdjusts
			finalQ += tr.FinalQ
		}
		res.AddRow(
			engine.Str(pt.policy()),
			engine.Number("%d", float64(pt.initialQ)),
			engine.Tuple("%d/%d (%.1f%%)", float64(read), float64(total), 100*float64(read)/float64(total)),
			engine.Number("%.0f", float64(cmds)/float64(trials)),
			engine.Number("%.0f", float64(slots)/float64(trials)),
			engine.Number("%.3f", float64(singles+captures)/float64(slots)),
			engine.Number("%.1f", float64(adjusts)/float64(trials)),
			engine.Number("%.1f", float64(captures)/float64(trials)),
			engine.Number("%.1f", finalQ/float64(trials)),
		)
	}
	res.AddNote("paired cells: every (policy, Q0) point shares placements, shadowing and tag RNGs via a common stream label")
	res.AddNote("floating = Annex-D floating-Q (mid-sweep QueryAdjust, C=%g); schoute = per-sweep 2.39x backlog estimate only", session.DefaultQAdjustC)
	res.AddNote("2 rounds per trial, command budget 16384 per round")
	return res, nil
}
