package ivnsim

import (
	"math"
	"testing"

	"ivn/internal/em"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

// TestCommTrialHonorsScenarioGeometry is the regression test for the
// hard-coded-geometry bug: runCommAt used scenario.DefaultGeometry() for
// the CIB carrier and leak regardless of the scenario that realized the
// placement, so two scenarios differing only in Geometry produced
// identical trials. The placement draw itself is frequency-independent,
// which makes the check sharp: identical channels, different carriers.
func TestCommTrialHonorsScenarioGeometry(t *testing.T) {
	model := tag.StandardTag()
	base := scenario.NewTank(0.5, em.Water, 0.10)
	mod := scenario.NewTank(0.5, em.Water, 0.10)
	mod.Geometry.CIBFreq = 700e6 // lower carrier, less water loss

	a, err := RunCommTrial(base, 8, model, CommOptions{}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCommTrial(mod, 8, model, CommOptions{}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.PeakPower <= 0 || b.PeakPower <= 0 {
		t.Fatalf("degenerate peaks: %v, %v", a.PeakPower, b.PeakPower)
	}
	if math.Abs(a.PeakPower-b.PeakPower) <= 1e-9*a.PeakPower {
		t.Fatalf("modified-geometry tank produced the default-geometry peak %v — geometry not plumbed", a.PeakPower)
	}
}

// TestGainTrialsHonorScenarioGeometry covers the same plumbing on the
// gain-measurement path.
func TestGainTrialsHonorScenarioGeometry(t *testing.T) {
	base := scenario.NewTank(0.5, em.Water, 0.10)
	mod := scenario.NewTank(0.5, em.Water, 0.10)
	mod.Geometry.CIBFreq = 700e6

	a, err := MeasureGains(base, 6, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureGains(mod, 6, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.CIB-b.CIB) <= 1e-9*a.CIB {
		t.Fatalf("gain trial ignored the scenario geometry (CIB peak %v)", a.CIB)
	}
}

// TestPlacementGeometryFallback pins the compatibility contract: a
// hand-built placement (zero Geom) reads back the default geometry, and a
// realized placement carries its scenario's.
func TestPlacementGeometryFallback(t *testing.T) {
	var hand scenario.Placement
	g := hand.Geometry()
	def := scenario.DefaultGeometry()
	if g.CIBFreq < def.CIBFreq-1 || g.CIBFreq > def.CIBFreq+1 {
		t.Fatalf("hand-built placement geometry CIBFreq %v, want default %v", g.CIBFreq, def.CIBFreq)
	}

	mod := scenario.NewTank(0.5, em.Water, 0.10)
	mod.Geometry.CIBFreq = 700e6
	p, err := mod.Realize(4, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Geometry().CIBFreq; got < 699e6 || got > 701e6 {
		t.Fatalf("realized placement geometry CIBFreq %v, want 700e6", got)
	}
}
