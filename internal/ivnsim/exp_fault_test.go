package ivnsim

import (
	"reflect"
	"testing"

	"ivn/internal/fault"
)

// TestFaultMatrixAcceptance pins the issue's headline claim at the
// committed artifact seed: the recovery stack restores inventory success
// to ≥95% of the fault-free baseline at every fault intensity, while the
// no-recovery ablation shows measurable degradation once faults are at
// unit intensity.
func TestFaultMatrixAcceptance(t *testing.T) {
	rows, err := FaultMatrixSummary(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	scales := fault.DefaultScales()
	if len(rows) != 2*len(scales) {
		t.Fatalf("got %d rows, want %d", len(rows), 2*len(scales))
	}
	// Rows come in (recovery on, recovery off) pairs per scale.
	byScale := map[float64][2]FaultMatrixRow{}
	for i := 0; i < len(rows); i += 2 {
		on, off := rows[i], rows[i+1]
		if !on.Recovery || off.Recovery || on.Scale != off.Scale {
			t.Fatalf("row pair %d malformed: %+v / %+v", i/2, on, off)
		}
		byScale[on.Scale] = [2]FaultMatrixRow{on, off}
	}

	baseline := byScale[0][0].SuccessRate()
	if baseline != 1 {
		t.Fatalf("fault-free baseline success %.3f, want 1", baseline)
	}
	if off := byScale[0][1].SuccessRate(); off != baseline {
		t.Fatalf("fault-free ablation success %.3f, want %.3f", off, baseline)
	}

	degraded := false
	for _, scale := range scales {
		pair := byScale[scale]
		on, off := pair[0], pair[1]
		// Acceptance: recovery holds ≥95% of the fault-free baseline.
		if got := on.SuccessRate(); got < 0.95*baseline {
			t.Errorf("scale %g: recovery success %.3f < 0.95×baseline %.3f", scale, got, baseline)
		}
		if scale >= 1 {
			// Acceptance: the ablation measurably degrades — strictly
			// below its paired recovery row and below the baseline.
			if off.SuccessRate() >= on.SuccessRate() {
				t.Errorf("scale %g: ablation %.3f not below recovery %.3f", scale, off.SuccessRate(), on.SuccessRate())
			}
			if off.SuccessRate() < baseline {
				degraded = true
			}
			if on.Recovered == 0 {
				t.Errorf("scale %g: recovery row never recovered a corrupted exchange", scale)
			}
			if off.ACKRetries != 0 || off.Recovered != 0 {
				t.Errorf("scale %g: ablation row used the recovery stack: %d/%d", scale, off.ACKRetries, off.Recovered)
			}
		}
		// Capture sub-measurement sanity: one attempt minimum per trial,
		// and only the recovery variant may spend extra attempts.
		if on.CaptureAttempts < on.Trials || off.CaptureAttempts < off.Trials {
			t.Errorf("scale %g: capture attempts below one per trial: %d/%d", scale, on.CaptureAttempts, off.CaptureAttempts)
		}
		if off.CaptureAttempts != off.Trials {
			t.Errorf("scale %g: ablation spent retry attempts: %d over %d trials", scale, off.CaptureAttempts, off.Trials)
		}
		if on.CaptureOK < off.CaptureOK {
			t.Errorf("scale %g: retry budget decoded fewer captures: %d vs %d", scale, on.CaptureOK, off.CaptureOK)
		}
	}
	if !degraded {
		t.Error("no-recovery ablation never fell below the fault-free baseline")
	}
}

// TestFaultMatrixDeterministic: identical configs reproduce identical
// summaries run to run (the trials fan out across goroutines, so this
// also guards the per-index rng splitting).
func TestFaultMatrixDeterministic(t *testing.T) {
	cfg := Config{Seed: 77, Quick: true}
	a, err := FaultMatrixSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultMatrixSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("summaries differ across runs:\n%+v\n%+v", a, b)
	}
	tab1, err := mustRun(t, "faultmatrix", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab2, err := mustRun(t, "faultmatrix", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab1.Rows, tab2.Rows) {
		t.Fatal("faultmatrix table rows differ across runs")
	}
}
