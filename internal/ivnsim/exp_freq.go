package ivnsim

import (
	"fmt"

	"ivn/internal/core"
	"ivn/internal/engine"
	"ivn/internal/rng"
	"ivn/internal/stats"
)

// Frequency-selection experiments: the Fig. 6 CDF and the §3.6 one-time
// optimization itself.

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "CDF of 5-antenna CIB peak power gain: best vs worst frequency set",
		Paper: "best set: ≥90% of optimal across channel draws; worst: <75% for half the draws",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "freqopt",
		Title: "One-time Monte-Carlo frequency-set optimization (Eq. 10)",
		Paper: "published plan: Δf = {0,7,20,49,68,73,90,113,121,137} Hz, RMS < 199 Hz",
		Run:   runFreqOpt,
	})
}

func runFig6(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("fig6", "CIB peak power gain CDF, 5-antenna transmitter",
		engine.Col("power gain", ""), engine.Col("CDF best set", ""), engine.Col("CDF worst set", ""))
	r := rng.New(cfg.Seed)
	trials := cfg.trials(2000, 300)
	samples := 4096
	if cfg.Quick {
		samples = 2048
	}

	best := core.PaperOffsets()[:5]
	ocfg := core.DefaultOptimizerConfig()
	if cfg.Quick {
		ocfg.Trials, ocfg.SamplesPerTrial = 16, 1024
	}
	worstPlan, err := core.WorstOf(5, 24, ocfg, r.Split("worst"))
	if err != nil {
		return nil, err
	}

	bestCDFData := core.PeakCDF(best, trials, samples, r.Split("best-cdf"))
	worstCDFData := core.PeakCDF(worstPlan.Offsets, trials, samples, r.Split("worst-cdf"))
	bestCDF, err := stats.NewCDF(bestCDFData)
	if err != nil {
		return nil, err
	}
	worstCDF, err := stats.NewCDF(worstCDFData)
	if err != nil {
		return nil, err
	}
	for g := 8.0; g <= 25.0; g += 1.0 {
		res.AddRow(
			engine.Number("%.0f", g),
			engine.Number("%.3f", bestCDF.At(g)),
			engine.Number("%.3f", worstCDF.At(g)),
		)
	}
	medBest := bestCDF.Quantile(0.5)
	medWorst := worstCDF.Quantile(0.5)
	res.AddNote("best set %v (median gain %.1f of max 25)", best, medBest)
	res.AddNote("worst-of-24 set %v (median gain %.1f)", worstPlan.Offsets, medWorst)
	res.AddNote("fraction of draws with best-set gain >= 22.5 (90%% of optimal): %.2f",
		bestCDF.FractionAbove(22.5))
	return res, nil
}

func runFreqOpt(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("freqopt", "Constrained frequency-plan optimization per antenna count",
		engine.Col("N", ""), engine.Col("optimized Δf", "Hz"), engine.Col("E[peak]/N", ""), engine.Col("RMS", "Hz"), engine.Col("limit", "Hz"))
	r := rng.New(cfg.Seed)
	ocfg := core.DefaultOptimizerConfig()
	counts := []int{3, 5, 8, 10}
	if cfg.Quick {
		ocfg.Trials, ocfg.SamplesPerTrial, ocfg.Restarts, ocfg.StepsPerRestart = 12, 1024, 2, 16
		counts = []int{3, 5}
	}
	for _, n := range counts {
		plan, err := core.Optimize(n, ocfg, r.Split(fmt.Sprintf("opt-%d", n)))
		if err != nil {
			return nil, err
		}
		res.AddRow(
			engine.Int(n),
			engine.List(plan.Offsets),
			engine.Number("%.3f", plan.Score/float64(n)),
			engine.Number("%.1f", plan.RMS),
			engine.Number("%.1f", plan.Limit),
		)
	}
	paper := core.PaperOffsets()
	seed := uint64(0)
	for _, f := range paper {
		seed = seed*1000003 + uint64(f)
	}
	paperScore := core.ExpectedPeak(paper, ocfg.Trials, ocfg.SamplesPerTrial, rng.New(seed))
	res.AddNote("paper plan %v: E[peak]/N = %.3f, RMS = %.1f Hz (limit %.1f Hz for an 800 µs query)",
		paper, paperScore/10, core.RMSOffset(paper), mustLimit())
	return res, nil
}

func mustLimit() float64 {
	l, err := core.FlatnessLimit(core.DefaultFlatnessAlpha, core.DefaultQueryDuration)
	if err != nil {
		panic(err)
	}
	return l
}
