package ivnsim

import (
	"fmt"

	"ivn/internal/core"
	"ivn/internal/rng"
	"ivn/internal/stats"
)

// Frequency-selection experiments: the Fig. 6 CDF and the §3.6 one-time
// optimization itself.

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "CDF of 5-antenna CIB peak power gain: best vs worst frequency set",
		Paper: "best set: ≥90% of optimal across channel draws; worst: <75% for half the draws",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "freqopt",
		Title: "One-time Monte-Carlo frequency-set optimization (Eq. 10)",
		Paper: "published plan: Δf = {0,7,20,49,68,73,90,113,121,137} Hz, RMS < 199 Hz",
		Run:   runFreqOpt,
	})
}

func runFig6(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "CIB peak power gain CDF, 5-antenna transmitter",
		Header: []string{"power gain", "CDF best set", "CDF worst set"},
	}
	r := rng.New(cfg.Seed)
	trials := cfg.trials(2000, 300)
	samples := 4096
	if cfg.Quick {
		samples = 2048
	}

	best := core.PaperOffsets()[:5]
	ocfg := core.DefaultOptimizerConfig()
	if cfg.Quick {
		ocfg.Trials, ocfg.SamplesPerTrial = 16, 1024
	}
	worstPlan, err := core.WorstOf(5, 24, ocfg, r.Split("worst"))
	if err != nil {
		return nil, err
	}

	bestCDFData := core.PeakCDF(best, trials, samples, r.Split("best-cdf"))
	worstCDFData := core.PeakCDF(worstPlan.Offsets, trials, samples, r.Split("worst-cdf"))
	bestCDF, err := stats.NewCDF(bestCDFData)
	if err != nil {
		return nil, err
	}
	worstCDF, err := stats.NewCDF(worstCDFData)
	if err != nil {
		return nil, err
	}
	for g := 8.0; g <= 25.0; g += 1.0 {
		t.AddRow(
			fmt.Sprintf("%.0f", g),
			fmt.Sprintf("%.3f", bestCDF.At(g)),
			fmt.Sprintf("%.3f", worstCDF.At(g)),
		)
	}
	medBest := bestCDF.Quantile(0.5)
	medWorst := worstCDF.Quantile(0.5)
	t.AddNote("best set %v (median gain %.1f of max 25)", best, medBest)
	t.AddNote("worst-of-24 set %v (median gain %.1f)", worstPlan.Offsets, medWorst)
	t.AddNote("fraction of draws with best-set gain >= 22.5 (90%% of optimal): %.2f",
		bestCDF.FractionAbove(22.5))
	return t, nil
}

func runFreqOpt(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "freqopt",
		Title:  "Constrained frequency-plan optimization per antenna count",
		Header: []string{"N", "optimized Δf (Hz)", "E[peak]/N", "RMS (Hz)", "limit (Hz)"},
	}
	r := rng.New(cfg.Seed)
	ocfg := core.DefaultOptimizerConfig()
	counts := []int{3, 5, 8, 10}
	if cfg.Quick {
		ocfg.Trials, ocfg.SamplesPerTrial, ocfg.Restarts, ocfg.StepsPerRestart = 12, 1024, 2, 16
		counts = []int{3, 5}
	}
	for _, n := range counts {
		plan, err := core.Optimize(n, ocfg, r.Split(fmt.Sprintf("opt-%d", n)))
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%v", plan.Offsets),
			fmt.Sprintf("%.3f", plan.Score/float64(n)),
			fmt.Sprintf("%.1f", plan.RMS),
			fmt.Sprintf("%.1f", plan.Limit),
		)
	}
	paper := core.PaperOffsets()
	seed := uint64(0)
	for _, f := range paper {
		seed = seed*1000003 + uint64(f)
	}
	paperScore := core.ExpectedPeak(paper, ocfg.Trials, ocfg.SamplesPerTrial, rng.New(seed))
	t.AddNote("paper plan %v: E[peak]/N = %.3f, RMS = %.1f Hz (limit %.1f Hz for an 800 µs query)",
		paper, paperScore/10, core.RMSOffset(paper), mustLimit())
	return t, nil
}

func mustLimit() float64 {
	l, err := core.FlatnessLimit(core.DefaultFlatnessAlpha, core.DefaultQueryDuration)
	if err != nil {
		panic(err)
	}
	return l
}
