package ivnsim

import "testing"

// Golden regression tests: the analytic (trial-free) experiments must
// reproduce these exact rows. They pin the physics constants — diode
// threshold, tissue dielectrics, Fresnel boundary math — so an accidental
// model change cannot slip through as "just different random numbers".

func TestGoldenFig2(t *testing.T) {
	tab, err := mustRun(t, "fig2", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]string{
		"-0.200": {"0.000", "0.000"},
		"0.100":  {"2.000", "0.000"},
		"0.300":  {"6.000", "0.000"},
		"0.400":  {"8.000", "2.000"},
		"0.600":  {"12.000", "6.000"},
	}
	seen := 0
	for _, row := range tab.Rows {
		if w, ok := want[row[0]]; ok {
			if row[1] != w[0] || row[2] != w[1] {
				t.Errorf("V=%s: got (%s, %s), want (%s, %s)", row[0], row[1], row[2], w[0], w[1])
			}
			seen++
		}
	}
	if seen != len(want) {
		t.Fatalf("matched %d/%d golden rows", seen, len(want))
	}
}

func TestGoldenFig3(t *testing.T) {
	tab, err := mustRun(t, "fig3", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Pinned rows from the derived dielectric model: the air→muscle
	// boundary costs 3.91 dB and muscle attenuates 2.49 dB/cm at 915 MHz.
	want := map[string][2]string{
		"10": {"0.00", "3.91"},
		"20": {"6.02", "34.80"},
		"30": {"9.54", "63.20"},
	}
	seen := 0
	for _, row := range tab.Rows {
		if w, ok := want[row[0]]; ok {
			if row[1] != w[0] || row[2] != w[1] {
				t.Errorf("d=%s cm: got (%s, %s), want (%s, %s)", row[0], row[1], row[2], w[0], w[1])
			}
			seen++
		}
	}
	if seen != len(want) {
		t.Fatalf("matched %d/%d golden rows", seen, len(want))
	}
}

func TestGoldenFig4(t *testing.T) {
	tab, err := mustRun(t, "fig4", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The three regimes' conduction angles, to three decimals.
	wantAngles := []string{"0.474", "0.406", "0.000"}
	for i, w := range wantAngles {
		if tab.Rows[i][2] != w {
			t.Errorf("regime %d conduction angle %s, want %s", i, tab.Rows[i][2], w)
		}
	}
	// Deep tissue harvests exactly nothing.
	if tab.Rows[2][3] != "0.000" {
		t.Errorf("deep-tissue V_DC %s, want 0.000", tab.Rows[2][3])
	}
}

func TestGoldenDeterminismAcrossRuns(t *testing.T) {
	// Randomized experiments must be byte-identical for equal seeds.
	for _, id := range []string{"fig6", "fig9", "invivo"} {
		a, err := mustRun(t, id, Config{Seed: 77, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := mustRun(t, id, Config{Seed: 77, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: row counts differ", id)
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j] != b.Rows[i][j] {
					t.Fatalf("%s: row %d col %d differs across identical seeds: %q vs %q",
						id, i, j, a.Rows[i][j], b.Rows[i][j])
				}
			}
		}
	}
}
