package runspec

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ivn/internal/engine"
)

// Journal files are JSONL: one header line identifying the run the
// entries belong to, then one engine.JournalEntry per completed trial.
// The header pins the *whole* run's canonical spec and content key —
// which bakes in the build stamp — so resuming against a different spec
// or merging fragments from a different build fails loudly instead of
// silently mixing incompatible samples.

const (
	journalKind    = "ivn-journal"
	journalVersion = 1
)

// journalHeader is the first line of a journal file.
type journalHeader struct {
	Kind string `json:"kind"`
	V    int    `json:"v"`
	// Spec is the whole run's canonical serialization (shard excluded):
	// what Merge re-executes to replay the entries.
	Spec json.RawMessage `json:"spec"`
	// Key is the whole run's content key (spec + build stamp).
	Key string `json:"key"`
	// Shard is the fragment this file checkpoints; zero for an
	// unsharded checkpoint journal.
	Shard engine.Shard `json:"shard"`
}

// headerFor builds the header a journal for spec must carry.
func headerFor(spec Spec) (journalHeader, error) {
	whole := spec.Whole()
	canon, err := whole.Canonical()
	if err != nil {
		return journalHeader{}, err
	}
	key, err := whole.Key()
	if err != nil {
		return journalHeader{}, err
	}
	var sh engine.Shard
	if spec.Shard != nil {
		sh = *spec.Shard
	}
	return journalHeader{Kind: journalKind, V: journalVersion, Spec: canon, Key: key, Shard: sh}, nil
}

// OpenJournal opens spec.Journal for checkpointing. Without Resume the
// file is created (or truncated) and stamped with the run's header.
// With Resume the existing file's header is verified against the spec —
// same whole-run key, same shard — its complete entries are loaded for
// replay, a torn final line (SIGKILL mid-append) is truncated away, and
// the file is reopened for appending. The caller owns closing f.
func OpenJournal(spec Spec) (j *engine.Journal, f *os.File, err error) {
	if spec.Journal == "" {
		return nil, nil, fmt.Errorf("runspec: no journal path in spec")
	}
	hdr, err := headerFor(spec)
	if err != nil {
		return nil, nil, err
	}
	hline, err := json.Marshal(hdr)
	if err != nil {
		return nil, nil, fmt.Errorf("runspec: journal header: %w", err)
	}
	hline = append(hline, '\n')

	if !spec.Resume {
		f, err := os.OpenFile(spec.Journal, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("runspec: create journal: %w", err)
		}
		if _, err := f.Write(hline); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("runspec: write journal header: %w", err)
		}
		return engine.NewJournal(f), f, nil
	}

	f, err = os.OpenFile(spec.Journal, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("runspec: open journal for resume: %w", err)
	}
	defer func() {
		if err != nil {
			_ = f.Close()
		}
	}()
	br := bufio.NewReader(f)
	got, hlen, err := readHeader(br)
	if err != nil {
		return nil, nil, fmt.Errorf("runspec: journal %s: %w", spec.Journal, err)
	}
	if got.Key != hdr.Key {
		return nil, nil, fmt.Errorf("runspec: journal %s belongs to a different run or build (key %.12s… vs this run's %.12s…)", spec.Journal, got.Key, hdr.Key)
	}
	if got.Shard != hdr.Shard {
		return nil, nil, fmt.Errorf("runspec: journal %s checkpoints shard %s, spec says %s", spec.Journal, got.Shard, hdr.Shard.String())
	}
	j = engine.NewJournal(nil)
	_, consumed, err := j.LoadEntries(br)
	if err != nil {
		return nil, nil, fmt.Errorf("runspec: journal %s: %w", spec.Journal, err)
	}
	// Drop any torn final line so appended entries start on a clean
	// boundary; O_APPEND then keeps writes at the (new) end.
	if err = f.Truncate(hlen + consumed); err != nil {
		return nil, nil, fmt.Errorf("runspec: truncate journal %s: %w", spec.Journal, err)
	}
	j.Attach(f)
	return j, f, nil
}

// readHeader parses the header line, returning its byte length.
func readHeader(br *bufio.Reader) (journalHeader, int64, error) {
	line, err := br.ReadBytes('\n')
	if err != nil && (err != io.EOF || len(line) == 0) {
		return journalHeader{}, 0, fmt.Errorf("missing journal header: %w", err)
	}
	var hdr journalHeader
	dec := json.NewDecoder(bytes.NewReader(line))
	if derr := dec.Decode(&hdr); derr != nil {
		return journalHeader{}, 0, fmt.Errorf("bad journal header: %v", derr)
	}
	if hdr.Kind != journalKind {
		return journalHeader{}, 0, fmt.Errorf("not an ivn journal (kind %q)", hdr.Kind)
	}
	if hdr.V != journalVersion {
		return journalHeader{}, 0, fmt.Errorf("journal version %d, this build reads %d", hdr.V, journalVersion)
	}
	return hdr, int64(len(line)), nil
}

// RunFragment executes a sharded spec: only the shard's stride of each
// trial schedule runs, every executed trial is checkpointed to
// spec.Journal, and the fragment's table output — reduced over an
// incomplete sample set — is discarded. The returned journal reports
// Recorded/Replayed counts; the file on disk is the fragment's product.
func RunFragment(ctx context.Context, lim engine.Limits, spec Spec) (*engine.Journal, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Shard == nil {
		return nil, fmt.Errorf("runspec: RunFragment needs a sharded spec (use Run for whole runs)")
	}
	j, f, err := OpenJournal(spec)
	if err != nil {
		return nil, err
	}
	lim.Shard = *spec.Shard
	lim.Journal = j
	_, _, rerr := Run(ctx, lim, spec.Whole(), nil)
	if cerr := f.Close(); cerr != nil && rerr == nil {
		rerr = fmt.Errorf("runspec: close journal %s: %w", spec.Journal, cerr)
	}
	if rerr != nil {
		return j, rerr
	}
	return j, nil
}

// fragment is one loaded journal file.
type fragment struct {
	path string
	hdr  journalHeader
	j    *engine.Journal
}

// loadFragment reads one journal file fully into memory.
func loadFragment(path string) (fragment, error) {
	f, err := os.Open(path)
	if err != nil {
		return fragment{}, fmt.Errorf("runspec: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	hdr, _, err := readHeader(br)
	if err != nil {
		return fragment{}, fmt.Errorf("runspec: %s: %w", path, err)
	}
	j := engine.NewJournal(nil)
	if _, _, err := j.LoadEntries(br); err != nil {
		return fragment{}, fmt.Errorf("runspec: %s: %w", path, err)
	}
	return fragment{path: path, hdr: hdr, j: j}, nil
}

// FindFragments lists the journal files under dir (non-recursive,
// sorted): every regular file that parses as a journal header. Files
// with other content are reported, not skipped — a merge directory
// should contain journals and nothing else.
func FindFragments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("runspec: %w", err)
	}
	var paths []string
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		paths = append(paths, filepath.Join(dir, ent.Name()))
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("runspec: no journal files in %s", dir)
	}
	return paths, nil
}

// Merge recombines shard journals into the whole run's result,
// byte-identical to a single-process run of the same spec on the same
// build: the whole spec (recovered from the fragment headers) re-executes
// with the union journal attached, so every journaled trial replays its
// recorded sample bit-exactly — in trial-index order, through the very
// same reduction code — and any trial no fragment covered is computed
// live. Fragments must all belong to one run/build and together cover
// every shard index; missing shards are an error naming them, because a
// silent partial merge would still "succeed" (live recompute) while
// wasting the sharding.
func Merge(ctx context.Context, lim engine.Limits, paths []string) (*engine.Result, Spec, error) {
	if len(paths) == 0 {
		return nil, Spec{}, fmt.Errorf("runspec: nothing to merge")
	}
	frags := make([]fragment, 0, len(paths))
	for _, p := range paths {
		fr, err := loadFragment(p)
		if err != nil {
			return nil, Spec{}, err
		}
		frags = append(frags, fr)
	}
	first := frags[0]
	for _, fr := range frags[1:] {
		if fr.hdr.Key != first.hdr.Key {
			return nil, Spec{}, fmt.Errorf("runspec: %s and %s journal different runs or builds (keys %.12s… vs %.12s…)", first.path, fr.path, first.hdr.Key, fr.hdr.Key)
		}
	}
	if err := checkCoverage(frags); err != nil {
		return nil, Spec{}, err
	}
	spec, err := ParseJSON(first.hdr.Spec)
	if err != nil {
		return nil, Spec{}, fmt.Errorf("runspec: %s: header spec: %w", first.path, err)
	}
	// Guard against key collisions across builds drifting out of sync
	// with the canonical form (belt to the buildStamp braces).
	if key, err := spec.Whole().Key(); err != nil || key != first.hdr.Key {
		return nil, Spec{}, fmt.Errorf("runspec: %s: header key does not match its spec on this build (journals from another build cannot merge here)", first.path)
	}
	union := engine.NewJournal(nil)
	for _, fr := range frags {
		if err := union.Absorb(fr.j); err != nil {
			return nil, Spec{}, fmt.Errorf("runspec: merging %s: %w", fr.path, err)
		}
	}
	lim.Journal = union
	res, _, err := Run(ctx, lim, spec.Whole(), nil)
	if err != nil {
		return nil, Spec{}, err
	}
	return res, spec.Whole(), nil
}

// checkCoverage verifies the fragments jointly cover every shard of one
// partition. A single unsharded checkpoint journal is also a valid
// "merge" input (it covers everything by itself).
func checkCoverage(frags []fragment) error {
	count := frags[0].hdr.Shard.Count
	for _, fr := range frags {
		if fr.hdr.Shard.Count != count {
			return fmt.Errorf("runspec: %s uses shard count %d, %s uses %d — fragments of different partitions cannot merge", frags[0].path, count, fr.path, fr.hdr.Shard.Count)
		}
	}
	if count <= 1 {
		if len(frags) > 1 {
			return fmt.Errorf("runspec: multiple unsharded journals for one run (keep one)")
		}
		return nil
	}
	have := make([]bool, count)
	for _, fr := range frags {
		have[fr.hdr.Shard.Index] = true
	}
	var missing []string
	for i, ok := range have {
		if !ok {
			missing = append(missing, fmt.Sprintf("%d/%d", i, count))
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("runspec: merge is missing shard(s) %s", strings.Join(missing, ", "))
	}
	return nil
}
