package runspec

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ivn/internal/engine"
)

func TestValidateShardJournalCombos(t *testing.T) {
	ok := Spec{Experiment: "fig2", Seed: 1, Quick: true,
		Shard: &engine.Shard{Index: 0, Count: 2}, Journal: "j.jsonl"}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		// A shard without a journal produces nothing recoverable.
		{Experiment: "fig2", Shard: &engine.Shard{Index: 0, Count: 2}},
		// Count 1 is "the whole run" — written as no shard at all.
		{Experiment: "fig2", Shard: &engine.Shard{Index: 0, Count: 1}, Journal: "j"},
		{Experiment: "fig2", Shard: &engine.Shard{Index: 2, Count: 2}, Journal: "j"},
		{Experiment: "fig2", Resume: true},
		// Replayed trials emit no events: trace + journal is rejected.
		{Experiment: "fig2", Trace: true, Journal: "j"},
		{Experiment: "fig2", Trace: true, Shard: &engine.Shard{Index: 0, Count: 2}, Journal: "j"},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v validated", s)
		}
	}
}

func TestNormalizeStripsExecutionDetailsKeepsShard(t *testing.T) {
	s := Spec{Experiment: "fig2", Seed: 1,
		Shard: &engine.Shard{Index: 1, Count: 2}, Journal: "j.jsonl", Resume: true}
	n := s.Normalize()
	if n.Journal != "" || n.Resume {
		t.Fatalf("Normalize kept execution details: %+v", n)
	}
	if n.Shard == nil {
		t.Fatal("Normalize dropped the shard — fragments would collide with whole runs")
	}
	w := s.Whole()
	if w.Shard != nil || w.Journal != "" || w.Resume {
		t.Fatalf("Whole kept fragment fields: %+v", w)
	}
}

func TestKeySeparatesFragmentsFromWholeRun(t *testing.T) {
	whole := Spec{Experiment: "fig2", Seed: 1, Quick: true}
	frag0 := whole
	frag0.Shard = &engine.Shard{Index: 0, Count: 2}
	frag0.Journal = "a.jsonl"
	frag1 := whole
	frag1.Shard = &engine.Shard{Index: 1, Count: 2}
	frag1.Journal = "b.jsonl"

	keys := map[string]string{}
	for name, s := range map[string]Spec{"whole": whole, "frag0": frag0, "frag1": frag1} {
		k, err := s.Key()
		if err != nil {
			t.Fatal(err)
		}
		for prev, pk := range keys {
			if pk == k {
				t.Fatalf("%s and %s share a key", name, prev)
			}
		}
		keys[name] = k
	}
	// The journal path is an execution detail: same fragment, different
	// path, same key.
	moved := frag0
	moved.Journal = "elsewhere.jsonl"
	mk, err := moved.Key()
	if err != nil {
		t.Fatal(err)
	}
	if mk != keys["frag0"] {
		t.Fatal("journal path leaked into the content key")
	}
}

// runJSON renders a spec's whole-run result to JSON bytes.
func runJSON(t *testing.T, spec Spec) []byte {
	t.Helper()
	res, _, err := Run(context.Background(), engine.Limits{}, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := engine.RenderJSON(res, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFragmentsMergeByteIdenticalToWholeRun(t *testing.T) {
	whole := Spec{Experiment: "fig9", Seed: 11, Quick: true}
	want := runJSON(t, whole)

	dir := t.TempDir()
	var paths []string
	for i := 0; i < 2; i++ {
		frag := whole
		frag.Shard = &engine.Shard{Index: i, Count: 2}
		frag.Journal = filepath.Join(dir, "frag"+string(rune('0'+i))+".jsonl")
		j, err := RunFragment(context.Background(), engine.Limits{}, frag)
		if err != nil {
			t.Fatal(err)
		}
		if j.Recorded() == 0 {
			t.Fatalf("fragment %d recorded nothing", i)
		}
		paths = append(paths, frag.Journal)
	}

	found, err := FindFragments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 2 {
		t.Fatalf("FindFragments found %d files, want 2", len(found))
	}
	res, spec, err := Merge(context.Background(), engine.Limits{}, found)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Shard != nil || spec.Journal != "" {
		t.Fatalf("Merge returned a non-whole spec: %+v", spec)
	}
	var got bytes.Buffer
	if err := engine.RenderJSON(res, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("merged result differs from the single-process run")
	}
	// Nothing should go through Run — Merge rejects sharded specs there.
	if _, _, err := Run(context.Background(), engine.Limits{}, Spec{
		Experiment: "fig9", Seed: 11, Quick: true,
		Shard: &engine.Shard{Index: 0, Count: 2}, Journal: paths[0],
	}, nil); err == nil || !strings.Contains(err.Error(), "RunFragment") {
		t.Fatalf("Run accepted a sharded spec: %v", err)
	}
}

func TestMergeNamesMissingShards(t *testing.T) {
	dir := t.TempDir()
	frag := Spec{Experiment: "fig2", Seed: 3, Quick: true,
		Shard: &engine.Shard{Index: 1, Count: 4}, Journal: filepath.Join(dir, "f1.jsonl")}
	if _, err := RunFragment(context.Background(), engine.Limits{}, frag); err != nil {
		t.Fatal(err)
	}
	_, _, err := Merge(context.Background(), engine.Limits{}, []string{frag.Journal})
	if err == nil {
		t.Fatal("partial merge succeeded")
	}
	for _, miss := range []string{"0/4", "2/4", "3/4"} {
		if !strings.Contains(err.Error(), miss) {
			t.Fatalf("error %q does not name missing shard %s", err, miss)
		}
	}
}

func TestMergeRejectsMixedPartitionsAndRuns(t *testing.T) {
	dir := t.TempDir()
	mkFrag := func(name string, seed uint64, idx, count int) string {
		path := filepath.Join(dir, name)
		frag := Spec{Experiment: "fig2", Seed: seed, Quick: true,
			Shard: &engine.Shard{Index: idx, Count: count}, Journal: path}
		if _, err := RunFragment(context.Background(), engine.Limits{}, frag); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := mkFrag("a.jsonl", 5, 0, 2)
	otherRun := mkFrag("b.jsonl", 6, 1, 2)
	if _, _, err := Merge(context.Background(), engine.Limits{}, []string{a, otherRun}); err == nil {
		t.Fatal("fragments of different runs merged")
	}
	otherPartition := mkFrag("c.jsonl", 5, 1, 3)
	if _, _, err := Merge(context.Background(), engine.Limits{}, []string{a, otherPartition}); err == nil {
		t.Fatal("fragments of different partitions merged")
	}
}

func TestJournalResumeSkipsRecordedTrials(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Experiment: "fig9", Seed: 11, Quick: true, Journal: filepath.Join(dir, "run.jsonl")}
	want := runJSON(t, spec.Whole())

	first := runJSON(t, spec)
	if !bytes.Equal(first, want) {
		t.Fatal("journaled run differs from plain run")
	}

	// Tear the final line as a SIGKILL would, then resume: only the torn
	// trial may execute (SchedMetrics.Trials counts executed trials only).
	data, err := os.ReadFile(spec.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spec.Journal, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	resume := spec
	resume.Resume = true
	var m engine.SchedMetrics
	res, _, err := Run(context.Background(), engine.Limits{Metrics: &m}, resume, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Trials.Load(); got != 1 {
		t.Fatalf("resume executed %d trials, want exactly the torn one", got)
	}
	var buf bytes.Buffer
	if err := engine.RenderJSON(res, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("resumed result differs from the plain run")
	}
}

func TestOpenJournalResumeRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Experiment: "fig2", Seed: 1, Quick: true, Journal: filepath.Join(dir, "j.jsonl")}
	if _, f, err := OpenJournal(spec); err != nil {
		t.Fatal(err)
	} else {
		f.Close()
	}

	other := spec
	other.Seed = 2
	other.Resume = true
	if _, _, err := OpenJournal(other); err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("resume against another run's journal: %v", err)
	}

	shifted := spec
	shifted.Shard = &engine.Shard{Index: 0, Count: 2}
	shifted.Resume = true
	if _, _, err := OpenJournal(shifted); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("resume with mismatched shard: %v", err)
	}

	if err := os.WriteFile(spec.Journal, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	resume := spec
	resume.Resume = true
	if _, _, err := OpenJournal(resume); err == nil {
		t.Fatal("resume accepted a non-journal file")
	}
}

func TestFindFragmentsEmptyDir(t *testing.T) {
	if _, err := FindFragments(t.TempDir()); err == nil {
		t.Fatal("empty merge directory accepted")
	}
}
