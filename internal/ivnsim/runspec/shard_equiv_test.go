package runspec

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ivn/internal/engine"
	"ivn/internal/ivnsim"
)

// Shard-merge equivalence suite: for every registered experiment, the
// recombination of shard fragments must render — in all three formats —
// the exact bytes of the single-process run. This is the distributed
// extension of the renderer-equivalence goldens (Seed 11, Quick): if a
// byte differs, sharding changed a result, which it must never do.

// renderAll renders res in every registered format.
func renderAll(t *testing.T, res *engine.Result) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for ext, render := range map[string]engine.Renderer{
		"txt": engine.RenderText, "csv": engine.RenderCSV, "json": engine.RenderJSON,
	} {
		var buf bytes.Buffer
		if err := render(res, &buf); err != nil {
			t.Fatal(err)
		}
		out[ext] = buf.Bytes()
	}
	return out
}

func TestShardMergeByteIdenticalAcrossRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short")
	}
	for _, e := range ivnsim.Registry() {
		for _, count := range []int{2, 4} {
			e, count := e, count
			t.Run(fmt.Sprintf("%s_x%d", e.ID, count), func(t *testing.T) {
				whole := Spec{Experiment: e.ID, Seed: 11, Quick: true}
				res, _, err := Run(context.Background(), engine.Limits{}, whole, nil)
				if err != nil {
					t.Fatal(err)
				}
				want := renderAll(t, res)

				dir := t.TempDir()
				for i := 0; i < count; i++ {
					frag := whole
					frag.Shard = &engine.Shard{Index: i, Count: count}
					frag.Journal = filepath.Join(dir, fmt.Sprintf("frag%d.jsonl", i))
					if _, err := RunFragment(context.Background(), engine.Limits{}, frag); err != nil {
						t.Fatalf("fragment %d/%d: %v", i, count, err)
					}
				}
				paths, err := FindFragments(dir)
				if err != nil {
					t.Fatal(err)
				}
				merged, _, err := Merge(context.Background(), engine.Limits{}, paths)
				if err != nil {
					t.Fatal(err)
				}
				got := renderAll(t, merged)
				for ext, wantBytes := range want {
					if !bytes.Equal(got[ext], wantBytes) {
						t.Errorf("%s x%d: merged %s differs from the single-process rendering", e.ID, count, ext)
					}
				}
			})
		}
	}
}

func TestFragmentKillAndResume(t *testing.T) {
	whole := Spec{Experiment: "fig9", Seed: 11, Quick: true}
	res, _, err := Run(context.Background(), engine.Limits{}, whole, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, res)
	dir := t.TempDir()

	frag1 := whole
	frag1.Shard = &engine.Shard{Index: 1, Count: 2}
	frag1.Journal = filepath.Join(dir, "f1.jsonl")
	if _, err := RunFragment(context.Background(), engine.Limits{}, frag1); err != nil {
		t.Fatal(err)
	}

	// Fragment 0/2 "killed" mid-flight: run it fully, then cut the
	// journal back to half its entries plus a torn partial line — the
	// exact on-disk state a SIGKILL during an append leaves behind.
	frag0 := whole
	frag0.Shard = &engine.Shard{Index: 0, Count: 2}
	frag0.Journal = filepath.Join(dir, "f0.jsonl")
	j, err := RunFragment(context.Background(), engine.Limits{}, frag0)
	if err != nil {
		t.Fatal(err)
	}
	total := j.Recorded()
	if total < 4 {
		t.Fatalf("fragment recorded only %d trials — too few to cut meaningfully", total)
	}
	data, err := os.ReadFile(frag0.Journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	keep := 1 + int(total)/2 // header + half the entries
	torn := append(bytes.Join(lines[:keep], nil), []byte(`{"label":"to`)...)
	if err := os.WriteFile(frag0.Journal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: the surviving entries replay, ONLY the lost ones execute.
	// SchedMetrics.Trials counts executed trials only, which pins the
	// never-re-execute contract exactly.
	frag0.Resume = true
	var m engine.SchedMetrics
	j2, err := RunFragment(context.Background(), engine.Limits{Metrics: &m}, frag0)
	if err != nil {
		t.Fatal(err)
	}
	kept := int64(keep - 1)
	if got := j2.Replayed(); got != kept {
		t.Fatalf("resume replayed %d, want the %d surviving entries", got, kept)
	}
	if got := m.Trials.Load(); got != total-kept {
		t.Fatalf("resume executed %d trials, want %d (journaled trials must never re-execute)", got, total-kept)
	}

	merged, _, err := Merge(context.Background(), engine.Limits{}, []string{frag0.Journal, frag1.Journal})
	if err != nil {
		t.Fatal(err)
	}
	got := renderAll(t, merged)
	for ext, wantBytes := range want {
		if !bytes.Equal(got[ext], wantBytes) {
			t.Errorf("kill-and-resume merge: %s differs from the single-process rendering", ext)
		}
	}
}
