package runspec

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ivn/internal/engine"
	"ivn/internal/ivnsim"
)

func TestValidate(t *testing.T) {
	good := Spec{Experiment: "fig9", Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{},
		{Experiment: "no-such-experiment"},
		{Experiment: "fig9", Trials: -1},
		{Experiment: "faultmatrix", FaultScales: []float64{-1}},
		{Experiment: "faultmatrix", FaultScales: []float64{math.NaN()}},
		{Experiment: "faultmatrix", FaultScales: []float64{math.Inf(1)}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v validated", s)
		}
	}
}

func TestCanonicalCollapsesEquivalentSpecs(t *testing.T) {
	a := Spec{Experiment: "fig9", Seed: 2, FaultScales: nil}
	b := Spec{Experiment: "fig9", Seed: 2, FaultScales: []float64{}}
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("nil vs empty fault scales diverge:\n%s\n%s", ca, cb)
	}
	// Round-trip: canonical bytes parse back to the normalized spec.
	back, err := ParseJSON(ca)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, a.Normalize()) {
		t.Fatalf("round trip changed the spec: %+v vs %+v", back, a.Normalize())
	}
}

func TestKeySeparatesDistinctRuns(t *testing.T) {
	base := Spec{Experiment: "fig9", Seed: 2, Quick: true}
	variants := []Spec{
		{Experiment: "fig10a", Seed: 2, Quick: true},
		{Experiment: "fig9", Seed: 3, Quick: true},
		{Experiment: "fig9", Seed: 2},
		{Experiment: "fig9", Seed: 2, Quick: true, Trials: 7},
		{Experiment: "fig9", Seed: 2, Quick: true, Trace: true},
		{Experiment: "faultmatrix", Seed: 2, Quick: true, FaultScales: []float64{0, 1}},
	}
	kb, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	if len(kb) != 64 {
		t.Fatalf("key %q is not hex sha256", kb)
	}
	seen := map[string]bool{kb: true}
	for _, v := range variants {
		k, err := v.Key()
		if err != nil {
			t.Fatal(err)
		}
		if seen[k] {
			t.Fatalf("spec %+v collides with an earlier key", v)
		}
		seen[k] = true
	}
	// Stability: the same spec keys identically every time.
	again, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	if again != kb {
		t.Fatalf("key not stable: %s vs %s", again, kb)
	}
}

func TestParseJSONRejectsUnknownFieldsAndTrailing(t *testing.T) {
	if _, err := ParseJSON([]byte(`{"experiment":"fig9","seeed":2}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseJSON([]byte(`{"experiment":"fig9"}{"experiment":"fig9"}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
	s, err := ParseJSON([]byte(`{"experiment":"fig9","seed":11,"quick":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Experiment != "fig9" || s.Seed != 11 || !s.Quick {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseScales(t *testing.T) {
	got, err := ParseScales("0, 1.5 ,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1.5 || got[2] != 4 {
		t.Fatalf("ParseScales = %v", got)
	}
	if out, err := ParseScales(""); err != nil || out != nil {
		t.Fatalf("empty scales: %v, %v", out, err)
	}
	for _, bad := range []string{"x", "-1", "1,,2"} {
		if _, err := ParseScales(bad); err == nil {
			t.Fatalf("ParseScales(%q) accepted", bad)
		}
	}
}

func TestRunMatchesDirectExperimentRun(t *testing.T) {
	spec := Spec{Experiment: "fig2", Seed: 1, Quick: true}
	res, tlog, err := Run(context.Background(), engine.Limits{}, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tlog != nil {
		t.Fatal("untraced run returned a trace log")
	}
	e, err := ivnsim.ByID("fig2")
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Run(ivnsim.Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var got, direct bytes.Buffer
	if err := engine.RenderJSON(res, &got); err != nil {
		t.Fatal(err)
	}
	if err := engine.RenderJSON(want, &direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), direct.Bytes()) {
		t.Fatal("runspec.Run diverged from the direct experiment run")
	}
}

func TestRunCollectsTraceWhenRequested(t *testing.T) {
	spec := Spec{Experiment: "fig12", Seed: 2, Quick: true, Trace: true}
	_, tlog, err := Run(context.Background(), engine.Limits{}, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tlog == nil || len(tlog.Keys()) == 0 {
		t.Fatal("traced run collected no spans")
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Run(ctx, engine.Limits{}, Spec{Experiment: "fig9", Seed: 1, Quick: true}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestWriteOutputsReportsFailingPath(t *testing.T) {
	spec := Spec{Experiment: "fig2", Seed: 1, Quick: true}
	res, _, err := Run(context.Background(), engine.Limits{}, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A path under an existing *file* cannot be created (even by root,
	// unlike a read-only directory), so this exercises the error path.
	occupied := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(occupied, "sub")
	err = WriteOutputs(res, dir)
	if err == nil {
		t.Fatal("WriteOutputs into a file path succeeded")
	}
	if !strings.Contains(err.Error(), dir) {
		t.Fatalf("error does not name the failing path: %v", err)
	}

	// The happy path still writes all three artifacts.
	ok := t.TempDir()
	if err := WriteOutputs(res, ok); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{"txt", "csv", "json"} {
		if _, err := os.Stat(filepath.Join(ok, "fig2."+ext)); err != nil {
			t.Fatalf("missing %s artifact: %v", ext, err)
		}
	}
}
