// Package runspec is the one run pipeline shared by the ivnsim CLI and
// the ivnsimd daemon: a validated, canonically-serializable description
// of one experiment run (Spec), the executor that turns it into a typed
// engine.Result under a cancellation context and per-run scheduler
// limits, and the multi-format output fan-out.
//
// The canonical form matters beyond tidiness: the daemon's result cache
// is keyed by sha256 over Canonical() plus the module build stamp, so two
// requests that mean the same run — regardless of JSON field order,
// whitespace, or an empty-vs-nil fault-scale slice — hit the same cache
// entry, and any build that could change results misses it.
package runspec

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"

	"ivn/internal/engine"
	"ivn/internal/ivnsim"
	"ivn/internal/session"
)

// Spec describes one experiment run. The zero value is invalid; at
// minimum Experiment must name a registered experiment. Field semantics
// match the CLI flags of the same names.
type Spec struct {
	// Experiment is the registry id ("fig9", "population", ...).
	Experiment string `json:"experiment"`
	// Seed drives every random draw; equal specs reproduce identical
	// results byte for byte.
	Seed uint64 `json:"seed"`
	// Trials overrides the experiment's default trial count when > 0.
	Trials int `json:"trials,omitempty"`
	// Quick selects the reduced CI-sized workload.
	Quick bool `json:"quick,omitempty"`
	// FaultScales overrides the faultmatrix intensity sweep (multiples of
	// the default fault config; 0 = fault-free).
	FaultScales []float64 `json:"fault_scales,omitempty"`
	// Trace collects the session-layer event stream alongside the result.
	Trace bool `json:"trace,omitempty"`
	// Shard, when non-nil, makes this spec a work fragment: only the
	// owned stride of each Trials call executes, and the run's output is
	// its journal rather than a table (see RunFragment/Merge). Shard is
	// run *content* — it stays in Canonical and Key, so a fragment's key
	// never collides with the whole run's or another fragment's.
	Shard *engine.Shard `json:"shard,omitempty"`
	// Journal is the checkpoint-journal path. Unlike Shard it is an
	// execution detail — where to checkpoint, not what to compute — so
	// Normalize strips it and it never reaches Canonical or Key.
	Journal string `json:"journal,omitempty"`
	// Resume reloads Journal instead of truncating it, re-executing only
	// trials the journal lacks. Execution detail like Journal: stripped
	// by Normalize.
	Resume bool `json:"resume,omitempty"`
}

// Validate checks the spec against the experiment registry and the
// engine's parameter contracts. A valid spec is guaranteed to resolve in
// Run without an argument error (trial-level failures can still occur).
func (s Spec) Validate() error {
	if s.Experiment == "" {
		return fmt.Errorf("runspec: missing experiment id")
	}
	// ByID's error already names the package and lists valid ids; an
	// extra "runspec:" layer would just stutter in CLI/daemon output.
	if _, err := ivnsim.ByID(s.Experiment); err != nil {
		return err
	}
	if s.Trials < 0 {
		return fmt.Errorf("runspec: negative trials %d", s.Trials)
	}
	for _, v := range s.FaultScales {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("runspec: fault scale %v is not finite", v)
		}
		if v < 0 {
			return fmt.Errorf("runspec: fault scale %v is negative", v)
		}
	}
	if s.Shard != nil {
		if err := s.Shard.Validate(); err != nil {
			return err
		}
		if !s.Shard.Enabled() {
			return fmt.Errorf("runspec: shard count %d must be >= 2 (omit shard for a whole run)", s.Shard.Count)
		}
		if s.Journal == "" {
			return fmt.Errorf("runspec: sharded run requires a journal path")
		}
	}
	if s.Resume && s.Journal == "" {
		return fmt.Errorf("runspec: resume requires a journal path")
	}
	if s.Trace && (s.Journal != "" || s.Shard != nil) {
		// Replayed trials execute nothing, so a journaled run's trace
		// would silently lack their events — reject rather than emit an
		// incomplete stream.
		return fmt.Errorf("runspec: trace cannot be combined with journal/shard execution")
	}
	return nil
}

// Normalize returns the spec in canonical form: representations that
// mean the same run (nil vs empty fault-scale slice) collapse to one,
// and execution details that do not change what is computed — the
// journal path and the resume flag — are stripped. Shard stays: a
// fragment computes different content than the whole run.
func (s Spec) Normalize() Spec {
	if len(s.FaultScales) == 0 {
		s.FaultScales = nil
	}
	s.Journal = ""
	s.Resume = false
	return s
}

// Whole returns the unsharded, unjournaled run this spec contributes
// to — the spec whose outputs a merge must reproduce byte for byte.
func (s Spec) Whole() Spec {
	s.Shard = nil
	s.Journal = ""
	s.Resume = false
	return s
}

// Canonical returns the spec's canonical serialization: normalized, with
// a fixed field order (struct declaration order) and shortest-round-trip
// float encoding, so equal runs serialize to equal bytes. It is valid
// JSON and round-trips through ParseJSON.
func (s Spec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s.Normalize())
}

// buildStamp identifies the code that would execute a run: module path
// and version, plus the VCS revision when the binary carries one. Baked
// into cache keys so results computed by a different build never
// masquerade as fresh.
func buildStamp() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown-build"
	}
	var sb strings.Builder
	sb.WriteString(info.Main.Path)
	sb.WriteByte('@')
	sb.WriteString(info.Main.Version)
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" || kv.Key == "vcs.modified" {
			sb.WriteByte(' ')
			sb.WriteString(kv.Key)
			sb.WriteByte('=')
			sb.WriteString(kv.Value)
		}
	}
	return sb.String()
}

// Key returns the spec's content key: hex sha256 over the canonical
// serialization and the module build stamp. Two specs share a key iff
// they describe the same run of the same code, which is exactly the
// contract a result cache needs.
func (s Spec) Key() (string, error) {
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	// hash.Hash.Write never returns an error (its contract), hence the
	// explicit discards.
	h := sha256.New()
	_, _ = h.Write(canon)
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(buildStamp()))
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ParseJSON decodes a spec from JSON, rejecting unknown fields so a
// mistyped option fails loudly instead of silently running the default.
func ParseJSON(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("runspec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("runspec: trailing data after spec document")
	}
	return s, nil
}

// ParseScales parses a comma-separated list of non-negative fault-scale
// multiples (the CLI's -faultscales flag); empty means "use the
// experiment's default sweep".
func ParseScales(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad scale %q: %v", p, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("scale %q is negative", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// Run executes the spec: experiment lookup, option threading, and the
// trial engine, under ctx (prompt cooperative cancellation between
// trials) and lim (per-run parallelism cap + scheduler metrics).
//
// tlog collects the session trace when Spec.Trace is set: pass nil to
// have Run allocate one per run (the daemon's shape), or pass a shared
// log to merge several runs' spans into one stream (the CLI's -trace
// with -run all). The returned log is the one that collected this run,
// nil when tracing was off.
func Run(ctx context.Context, lim engine.Limits, spec Spec, tlog *session.TraceLog) (*engine.Result, *session.TraceLog, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	if spec.Shard != nil {
		// A fragment's product is its journal, not a table: route it
		// through RunFragment, and recombine fragments with Merge.
		return nil, nil, fmt.Errorf("runspec: sharded spec (shard %s) runs as a fragment — use RunFragment and Merge", spec.Shard)
	}
	if spec.Journal != "" {
		// Unsharded checkpoint journal: the run owns every trial, so the
		// result is complete; recorded entries let a killed run resume.
		j, f, err := OpenJournal(spec)
		if err != nil {
			return nil, nil, err
		}
		lim.Journal = j
		res, tl, rerr := Run(ctx, lim, spec.Whole(), tlog)
		if cerr := f.Close(); cerr != nil && rerr == nil {
			return nil, tl, fmt.Errorf("runspec: close journal %s: %w", spec.Journal, cerr)
		}
		return res, tl, rerr
	}
	e, err := ivnsim.ByID(spec.Experiment)
	if err != nil {
		return nil, nil, err
	}
	if spec.Trace && tlog == nil {
		tlog = session.NewTraceLog()
	}
	if !spec.Trace {
		// The spec is the single source of truth for what a run produces
		// (its key feeds the cache): an attached log without Trace set
		// would make two byte-equal specs produce different artifacts.
		tlog = nil
	}
	cfg := ivnsim.Config{
		Seed:        spec.Seed,
		Trials:      spec.Trials,
		Quick:       spec.Quick,
		FaultScales: spec.FaultScales,
		Trace:       tlog,
		Ctx:         ctx,
		Limits:      lim,
	}
	res, err := e.Run(cfg)
	if err != nil {
		return nil, tlog, err
	}
	return res, tlog, nil
}

// WriteOutputs writes one file per registered renderer — <id>.txt,
// <id>.csv and <id>.json — under dir. Every failure is reported with the
// path it concerns, so a partially-written fan-out names exactly which
// artifact cannot be trusted.
func WriteOutputs(res *engine.Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runspec: output dir %s: %w", dir, err)
	}
	for _, out := range []struct {
		ext    string
		render engine.Renderer
	}{
		{"txt", engine.RenderText}, {"csv", engine.RenderCSV}, {"json", engine.RenderJSON},
	} {
		path := filepath.Join(dir, res.ID+"."+out.ext)
		if err := writeOne(res, out.render, path); err != nil {
			return fmt.Errorf("runspec: write %s: %w", path, err)
		}
	}
	return nil
}

// writeOne renders res to path, reporting the first error of the
// create/render/close sequence.
func writeOne(res *engine.Result, render engine.Renderer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(res, f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
