package ivnsim

import (
	"math"
	"math/cmplx"
	"testing"

	"ivn/internal/core"
	"ivn/internal/em"
	"ivn/internal/gen2"
	"ivn/internal/link"
	"ivn/internal/radio"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

// TestWaveformLevelDownlink exercises the complete downlink at waveform
// resolution with no shortcuts: the beamformer's PIE command envelope
// multiplies each carrier, the carriers traverse realized tissue channels,
// the superposition's envelope is detected at the sensor, and the tag's
// PIE decoder recovers the command bits — all while the CIB beat pattern
// rides underneath. This validates the §3.2/§3.6 claim chain end to end:
// synchronized commands + flatness-constrained offsets ⇒ decodable
// downlink on top of the beamformed envelope.
func TestWaveformLevelDownlink(t *testing.T) {
	r := rng.New(4)
	sc := scenario.NewTank(0.5, em.Water, 0.06)
	p, err := sc.Realize(8, r)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Antennas = 8
	cfg.SampleRate = 1e6 // envelope-rate synthesis keeps the test fast
	bf, err := core.New(cfg, r.Split("bf"))
	if err != nil {
		t.Fatal(err)
	}
	query := &gen2.Query{Q: 0, Session: gen2.S1}
	tx, err := bf.TransmitCommand(query, true)
	if err != nil {
		t.Fatal(err)
	}

	// Per-antenna channel coefficients at the CIB carrier.
	chans := link.DownlinkCoeffs(p, bf.CenterFreq)

	// The beamformer knows its own beat schedule (that is the point of
	// the §3.6 integer-offset design: the peak recurs every T seconds) and
	// times each command to start at the peak. Emulate that by advancing
	// every carrier's phase to the peak instant before synthesis.
	carriers := carriersAtPeak(tx.Carriers, chans, bf.CenterFreq)

	// Synthesize the carrier superposition at the sensor over the command
	// duration plus post-command CW, then impose the shared PIE envelope.
	post := 3 * len(tx.Envelope) / 2
	n := len(tx.Envelope) + post
	carrierSum, err := radio.ReceivedBaseband(carriers, chans, bf.CenterFreq, tx.SampleRate, n)
	if err != nil {
		t.Fatal(err)
	}
	env := make([]float64, n)
	for i := range env {
		pie := 1.0
		if i < len(tx.Envelope) {
			pie = tx.Envelope[i]
		}
		env[i] = pie * cmplx.Abs(carrierSum[i])
	}

	// The tag's envelope detector decodes the PIE frame riding on the
	// CIB beat.
	tg, err := tag.New(tag.StandardTag(), []byte{0xE2, 0x00, 0x00, 0x01}, r.Split("tag"))
	if err != nil {
		t.Fatal(err)
	}
	tg.UpdatePower(tg.Model.MinPeakPower() * 2) // power handled separately
	cmd, err := tg.DemodulateDownlink(env, bf.PIE)
	if err != nil {
		t.Fatalf("waveform-level downlink decode failed: %v", err)
	}
	got, ok := cmd.(*gen2.Query)
	if !ok {
		t.Fatalf("decoded %s, want Query", cmd.Type())
	}
	if *got != *query {
		t.Fatalf("decoded %+v, want %+v", got, query)
	}

	// Near the peak the envelope is deliberately flat (that is the
	// flatness constraint doing its job); over the FULL 1 s period the
	// CIB beat must swing substantially, or the test would not be
	// exercising CIB at all.
	lo, hi := math.Inf(1), 0.0
	for k := 0; k < 4096; k++ {
		tm := float64(k) / 4096
		var re, im float64
		for i, c := range carriers {
			ph := 2*math.Pi*(c.Freq-bf.CenterFreq)*tm + c.Phase
			s, co := math.Sincos(ph)
			v := complex(c.Amplitude*co, c.Amplitude*s) * chans[i]
			re += real(v)
			im += imag(v)
		}
		y := math.Hypot(re, im)
		lo = math.Min(lo, y)
		hi = math.Max(hi, y)
	}
	if hi/math.Max(lo, 1e-12) < 2 {
		t.Fatalf("full-period envelope swing only %vx; CIB beat missing", hi/lo)
	}
	// And the command rode within the flat region around the peak: its CW
	// tail sits close to the period maximum.
	cwLevel := env[len(tx.Envelope)+10]
	if cwLevel < 0.5*hi {
		t.Fatalf("command not peak-aligned: CW level %v vs period peak %v", cwLevel, hi)
	}

	reply := tg.HandleCommand(got)
	if reply.Kind != gen2.ReplyRN16 {
		t.Fatalf("tag did not answer the waveform-decoded query: %s", reply.Kind)
	}
}

// carriersAtPeak returns a copy of carriers with phases advanced to the
// instant (within one 1 s beat period) where the superposition through the
// given channels peaks — the transmit timing IVN's cyclic design provides.
func carriersAtPeak(cs []radio.Carrier, chans []complex128, f0 float64) []radio.Carrier {
	const scan = 8192
	bestT, bestY := 0.0, -1.0
	for k := 0; k < scan; k++ {
		tm := float64(k) / scan
		var re, im float64
		for i, c := range cs {
			ph := 2*math.Pi*(c.Freq-f0)*tm + c.Phase
			s, co := math.Sincos(ph)
			v := complex(c.Amplitude*co, c.Amplitude*s) * chans[i]
			re += real(v)
			im += imag(v)
		}
		if y := re*re + im*im; y > bestY {
			bestY, bestT = y, tm
		}
	}
	out := make([]radio.Carrier, len(cs))
	for i, c := range cs {
		c.Phase += 2 * math.Pi * (c.Freq - f0) * bestT
		out[i] = c
	}
	return out
}

// TestWaveformDownlinkAcrossPhaseDraws repeats the waveform-level decode
// over several independent PLL lockings: the flatness constraint must make
// the downlink robust to every phase alignment, including commands that
// start near an envelope trough.
func TestWaveformDownlinkAcrossPhaseDraws(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform sweep skipped in -short")
	}
	sc := scenario.NewTank(0.5, em.Water, 0.06)
	ok := 0
	const trials = 12
	for i := 0; i < trials; i++ {
		r := rng.New(uint64(100 + i))
		p, err := sc.Realize(8, r)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Antennas = 8
		cfg.SampleRate = 1e6
		bf, err := core.New(cfg, r.Split("bf"))
		if err != nil {
			t.Fatal(err)
		}
		query := &gen2.Query{Q: 0}
		tx, err := bf.TransmitCommand(query, true)
		if err != nil {
			t.Fatal(err)
		}
		chans := link.DownlinkCoeffs(p, bf.CenterFreq)
		carriers := carriersAtPeak(tx.Carriers, chans, bf.CenterFreq)
		n := len(tx.Envelope) + 2000
		carrierSum, err := radio.ReceivedBaseband(carriers, chans, bf.CenterFreq, tx.SampleRate, n)
		if err != nil {
			t.Fatal(err)
		}
		env := make([]float64, n)
		for k := range env {
			pie := 1.0
			if k < len(tx.Envelope) {
				pie = tx.Envelope[k]
			}
			env[k] = pie * cmplx.Abs(carrierSum[k])
		}
		bits, _, err := bf.PIE.DecodeFrame(env)
		if err == nil && bits.Equal(tx.Command) {
			ok++
		}
	}
	if ok != trials {
		t.Fatalf("waveform downlink decoded only %d/%d peak-aligned phase draws", ok, trials)
	}
}
