package ivnsim

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"ivn/internal/em"
	"ivn/internal/engine"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333") // padded
	tab.AddNote("hello %d", 5)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "bb", "333", "note: hello 5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableAddRowRejectsWideRows(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	defer func() {
		if recover() == nil {
			t.Fatal("row wider than the header was silently accepted")
		}
	}()
	tab.AddRow("1", "2", "3") // wider than the header: must panic, not truncate
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow(`va,l"ue`, "2")
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"va,l""ue",2`) {
		t.Fatalf("CSV escaping wrong:\n%s", out)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig3", "fig4", "fig6", "freqopt",
		"fig9", "fig10a", "fig10b", "fig11", "fig12",
		"fig13a", "fig13b", "fig13c", "fig13d",
		"fig15a", "fig15b", "invivo",
		"ablation-coherent", "ablation-equalpower", "ablation-twostage",
		"ablation-flatness", "ablation-averaging", "ablation-outofband",
		"ablation-safety", "ablation-freqerror", "ablation-hopping",
		"ablation-multipath", "ablation-phasenoise", "ablation-miller",
		"faultmatrix", "population", "adaptiveq",
	}
	for _, id := range want {
		e, err := ByID(id)
		if err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
			continue
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	if len(Registry()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(Registry()), len(want))
	}
	if _, err := ByID("nonsense"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestMeasureGainsRelationships(t *testing.T) {
	sc := scenario.NewTank(0.5, em.Water, 0.10)
	r := rng.New(42)
	g, err := MeasureGains(sc, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.Single <= 0 || g.CIB <= 0 || g.Blind <= 0 || g.MRT <= 0 {
		t.Fatalf("non-positive peaks: %+v", g)
	}
	// Oracle MRT upper-bounds everything at the same per-antenna power.
	if g.CIB > g.MRT*1.0001 || g.Blind > g.MRT*1.0001 {
		t.Fatalf("MRT is not the upper bound: %+v", g)
	}
}

func TestRunGainTrialsDeterministicAndParallelSafe(t *testing.T) {
	sc := scenario.NewTank(0.5, em.Water, 0.10)
	a, err := RunGainTrials(sc, 4, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGainTrials(sc, 4, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs across identical runs", i)
		}
	}
	if _, err := RunGainTrials(sc, 4, 0, 7); err == nil {
		t.Fatal("0 trials accepted")
	}
}

func TestCIBGainGrowsWithAntennas(t *testing.T) {
	sc := scenario.NewTank(0.5, em.Water, 0.10)
	med := func(n int) float64 {
		samples, err := RunGainTrials(sc, n, 30, 3)
		if err != nil {
			t.Fatal(err)
		}
		gains := make([]float64, len(samples))
		for i, s := range samples {
			gains[i] = s.CIB / s.Single
		}
		// crude median
		sum := 0.0
		for _, g := range gains {
			sum += g
		}
		return sum / float64(len(gains))
	}
	g2, g10 := med(2), med(10)
	if g10 < 4*g2 {
		t.Fatalf("mean gain at 10 antennas (%v) not well above 2 antennas (%v)", g10, g2)
	}
}

func TestRunCommTrialPowersNearAndNotFar(t *testing.T) {
	r := rng.New(5)
	near, err := RunCommTrial(scenario.NewAir(2), 8, tag.StandardTag(), CommOptions{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if !near.Powered || !near.Decoded {
		t.Fatalf("2 m / 8 antennas failed: %+v", near)
	}
	far, err := RunCommTrial(scenario.NewAir(200), 1, tag.StandardTag(), CommOptions{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if far.Powered {
		t.Fatalf("200 m single antenna powered the tag: %+v", far)
	}
}

func TestRunCommTrialWaveformAgreesNearOperatingPoint(t *testing.T) {
	r := rng.New(6)
	budget, err := RunCommTrial(scenario.NewAir(3), 8, tag.StandardTag(), CommOptions{}, r)
	if err != nil {
		t.Fatal(err)
	}
	r2 := rng.New(6)
	wave, err := RunCommTrial(scenario.NewAir(3), 8, tag.StandardTag(), CommOptions{Waveform: true}, r2)
	if err != nil {
		t.Fatal(err)
	}
	if budget.Decoded != wave.Decoded {
		t.Fatalf("budget and waveform paths disagree at 3 m: %+v vs %+v", budget, wave)
	}
	if wave.Decoded && wave.Correlation < 0.8 {
		t.Fatalf("waveform decode with correlation %v", wave.Correlation)
	}
}

func TestMaxOperatingDistanceProperties(t *testing.T) {
	mk := func(d float64) scenario.Scenario { return scenario.NewAir(d) }
	model := tag.StandardTag()
	d1, err := MaxOperatingDistance(mk, 1, model, 0.3, 100, 3, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := MaxOperatingDistance(mk, 8, model, 0.3, 100, 3, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if d1 < 3 || d1 > 10 {
		t.Fatalf("single-antenna range %v m, want ≈5", d1)
	}
	if d8 < 2*d1 {
		t.Fatalf("8-antenna range %v not well beyond single-antenna %v", d8, d1)
	}
	// Validation.
	if _, err := MaxOperatingDistance(mk, 1, model, 0, 10, 3, 2, 1); err == nil {
		t.Fatal("bad interval accepted")
	}
	if _, err := MaxOperatingDistance(mk, 1, model, 1, 10, 2, 3, 1); err == nil {
		t.Fatal("successNeeded > trials accepted")
	}
}

func TestQuickExperimentsAllRun(t *testing.T) {
	// Every registered experiment must complete in quick mode and produce
	// at least one row. This is the integration test for the whole
	// pipeline.
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(Config{Seed: 11, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if tab.ID != e.ID {
				t.Fatalf("table id %q != experiment id %q", tab.ID, e.ID)
			}
			var buf bytes.Buffer
			if err := engine.RenderText(tab, &buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFig9MonotoneShape(t *testing.T) {
	tab, err := mustRun(t, "fig9", Config{Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Median gain at 10 antennas must exceed 5× the 2-antenna median and
	// be below the N²=100 optimum... (allow fading headroom to 4N²).
	med := func(row int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][2], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if m1 := med(0); m1 != 1.0 {
		t.Fatalf("1-antenna gain %v, want 1", m1)
	}
	if med(9) < 5*med(1) {
		t.Fatalf("10-antenna median %v not well above 2-antenna %v", med(9), med(1))
	}
}

func TestInVivoShape(t *testing.T) {
	tab, err := mustRun(t, "invivo", Config{Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Row order: gastric std, gastric mini, subcutaneous std, subcutaneous
	// mini. Gastric mini must fail every session; subcutaneous standard
	// must succeed every session (paper §6.2).
	parse := func(cell string) (num, den int) {
		parts := strings.Split(cell, "/")
		num, _ = strconv.Atoi(parts[0])
		den, _ = strconv.Atoi(parts[1])
		return
	}
	gm, _ := parse(tab.Rows[1][3])
	if gm != 0 {
		t.Fatalf("gastric miniature decoded %s, want 0", tab.Rows[1][3])
	}
	ss, den := parse(tab.Rows[2][3])
	if ss != den {
		t.Fatalf("subcutaneous standard decoded %s, want all", tab.Rows[2][3])
	}
}

// mustRun executes an experiment and returns the string-level view of its
// typed result, which the shape tests assert on.
func mustRun(t *testing.T, id string, cfg Config) (*Table, error) {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		return nil, err
	}
	res, err := e.Run(cfg)
	if err != nil {
		return nil, err
	}
	return TableOf(res), nil
}
