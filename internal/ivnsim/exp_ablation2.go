package ivnsim

import (
	"fmt"
	"math"

	"ivn/internal/baseline"
	"ivn/internal/core"
	"ivn/internal/em"
	"ivn/internal/engine"
	"ivn/internal/gen2"
	"ivn/internal/link"
	"ivn/internal/pool"
	"ivn/internal/radio"
	"ivn/internal/reader"
	"ivn/internal/rng"
	"ivn/internal/safety"
	"ivn/internal/scenario"
	"ivn/internal/stats"
	"ivn/internal/tag"
)

// Second ablation group: exposure safety, oscillator imperfections,
// center-frequency hopping, and multipath robustness.

func init() {
	register(Experiment{
		ID:    "ablation-safety",
		Title: "RF exposure: duty-cycled CIB vs a peak-equivalent continuous transmitter",
		Paper: "§7: CIB's intrinsic duty cycling makes it FCC compliant and safe for human exposure",
		Run:   runAblationSafety,
	})
	register(Experiment{
		ID:    "ablation-freqerror",
		Title: "CIB robustness to per-carrier frequency error",
		Paper: "§5: USRPs cannot stably generate small offsets, so the prototype soft-codes them; errors break the 1 s peak periodicity",
		Run:   runAblationFreqError,
	})
	register(Experiment{
		ID:    "ablation-hopping",
		Title: "Center-frequency hopping out of a deep frequency-selective fade",
		Paper: "§3.7: an extension may adaptively hop the center frequency to a different band",
		Run:   runAblationHopping,
	})
	register(Experiment{
		ID:    "ablation-phasenoise",
		Title: "Coherent averaging vs reader-link phase drift",
		Paper: "§5: the USRPs share a CDA-2900 reference; a free-running link would forfeit the 1 s averaging gain",
		Run:   runAblationPhaseNoise,
	})
	register(Experiment{
		ID:    "ablation-multipath",
		Title: "CIB gain vs multipath richness",
		Paper: "§3.7: CIB's design is inherently robust to phase changes caused by multipath",
		Run:   runAblationMultipath,
	})
}

func runAblationSafety(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("ablation-safety", "Surface exposure at 0.35 m, 10-chain CIB vs peak-equivalent CW",
		engine.Col("transmitter", ""), engine.Col("avg SAR", "W/kg"), engine.Col("peak SAR", "W/kg"), engine.Col("compliant (1.6 W/kg avg)", ""))
	r := rng.New(cfg.Seed)
	bcfg := core.DefaultConfig()
	bf, err := core.New(bcfg, r)
	if err != nil {
		return nil, err
	}
	// Duty-cycle profile of the actual plan.
	betas := make([]float64, bf.N())
	for i := range betas {
		if i > 0 {
			betas[i] = r.Phase()
		}
	}
	env := core.EnvelopeSeries(bf.Offsets, betas, 1, 8192, nil)
	dc, err := safety.AnalyzeEnvelope(env)
	if err != nil {
		return nil, err
	}
	g := math.Pow(10, 7.0/20)
	const dist = 0.35
	cib, err := safety.EvaluateSurface(bf.Carriers(), g, dist, em.Skin, math.Sqrt(dc.PAPR), 915e6)
	if err != nil {
		return nil, err
	}
	res.AddRow(engine.Str("10-chain CIB (duty-cycled)"),
		engine.Number("%.3f", cib.AverageSAR),
		engine.Number("%.3f", cib.PeakSAR),
		engine.Bool(cib.Compliant()))

	// A continuous transmitter matching CIB's deliverable peak must run
	// PAPR× hotter on average.
	cwAvg := cib.AverageSAR * dc.PAPR
	res.AddRow(engine.Str("CW matching CIB's peak"),
		engine.Number("%.3f", cwAvg),
		engine.Number("%.3f", cwAvg),
		engine.Bool(cwAvg <= safety.SARLimitWkg))

	eirp := safety.EIRPdBm(bf.Carriers(), 7)
	res.AddNote("CIB envelope PAPR %.1f, %.1f%% of time within 3 dB of peak", dc.PAPR, dc.FractionNearPeak*100)
	res.AddNote("per-chain EIRP %.1f dBm (FCC §15.247 limit %.0f dBm; compliant at 6 dBi antennas or 1 dB backoff)",
		eirp, safety.FCCMaxEIRPdBm)
	return res, nil
}

// freqErrorSample is one frequency-error trial: the 1 s envelope peak and
// its recurrence ratio 10 periods later. Exported fields: journaled runs
// serialize samples to JSONL.
type freqErrorSample struct {
	Peak, Recur float64
}

func runAblationFreqError(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("ablation-freqerror", "Peak gain and 10-period peak recurrence vs per-carrier frequency error (10 carriers)",
		engine.Col("error σ", "Hz"), engine.Col("E[peak]/N", ""), engine.Col("peak recurrence after 10 s", ""))
	base := core.PaperOffsets()
	n := len(base)
	sweep := engine.Sweep[float64, freqErrorSample]{
		Trials: cfg.trials(40, 10),
		Plan: func(sigma float64) (uint64, string) {
			return cfg.Seed, fmt.Sprintf("fe-%v", sigma)
		},
		Measure: func(sigma float64, _ int, r *rng.Rand) (freqErrorSample, error) {
			var s freqErrorSample
			offsets := make([]float64, n)
			for i, f := range base {
				if i == 0 {
					offsets[i] = f
					continue
				}
				offsets[i] = f + sigma*r.NormFloat64()
			}
			betas := make([]float64, n)
			for i := range betas {
				if i > 0 {
					betas[i] = r.Phase()
				}
			}
			// Peak over the nominal 1 s period.
			buf := pool.Float64(4096)
			defer pool.PutFloat64(buf)
			series := core.EnvelopeSeries(offsets, betas, 1, 4096, buf)
			peak, idx := 0.0, 0
			for k, v := range series {
				if v > peak {
					peak, idx = v, k
				}
			}
			s.Peak = peak
			// The cyclic-operation guarantee: with exact integer offsets
			// the same peak recurs at t+10 s; frequency error dephases it.
			tPeak := float64(idx) / 4096
			s.Recur = core.Envelope(offsets, betas, tPeak+10) / peak
			return s, nil
		},
		Row: func(sigma float64, samples []freqErrorSample) ([]engine.Cell, error) {
			// Stream folds in index order: float addition is not associative,
			// so the reduction must not depend on scheduling.
			var peaks, recurs stats.Stream
			for _, s := range samples {
				peaks.Add(s.Peak)
				recurs.Add(s.Recur)
			}
			return []engine.Cell{
				engine.Number("%.2f", sigma),
				engine.Number("%.3f", peaks.Mean()/float64(n)),
				engine.Number("%.3f", recurs.Mean()),
			}, nil
		},
	}
	if err := sweep.RunIntoCtx(cfg.Context(), cfg.Limits, res, []float64{0, 0.05, 0.2, 0.5, 2, 10}); err != nil {
		return nil, err
	}
	res.AddNote("the peak amplitude itself is insensitive to offset error (CIB stays blind-channel-safe)")
	res.AddNote("but errors above ~0.05 Hz break the every-T-seconds peak schedule (§3.6 cyclic constraint) — why the prototype soft-codes offsets digitally instead of trusting PLL steps")
	return res, nil
}

func runAblationHopping(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("ablation-hopping", "Delivered peak power in a deep 915 MHz fade, fixed center vs hopped",
		engine.Col("strategy", ""), engine.Col("center", "MHz"), engine.Col("peak at sensor", "dBm"))
	r := rng.New(cfg.Seed)
	// Construct a channel with a strong echo that nulls 915 MHz: delay τ
	// with e^{-j2πfτ} = −1 at 915 MHz (τ = k/915e6 + 1/(2·915e6)).
	tau := 100.5 / 915e6
	ch := em.NewChannel(em.Path{AirDistance: 1})
	ch.TxGain = math.Pow(10, 7.0/20)
	ch.Rays = []em.Ray{{ExtraDelay: tau, Gain: complex(0.9, 0)}}

	measure := func(center float64) (float64, error) {
		bcfg := core.DefaultConfig()
		bcfg.CenterFreq = center
		bf, err := core.New(bcfg, r.Split(fmt.Sprintf("bf-%v", center)))
		if err != nil {
			return 0, err
		}
		chans := make([]complex128, bf.N())
		for i := range chans {
			chans[i] = ch.Coefficient(center)
		}
		return baseline.PeakReceivedPowerRefined(bf.Carriers(), chans, link.ScanDuration, link.ScanCoarse, link.ScanSamples)
	}

	fixed, err := measure(915e6)
	if err != nil {
		return nil, err
	}
	res.AddRow(engine.Str("fixed"), engine.Number("%.1f", 915.0), engine.Number("%.1f", 10*math.Log10(fixed)+30))

	// Hop: probe candidate ISM centers and move to the best.
	bcfg := core.DefaultConfig()
	bf, err := core.New(bcfg, r.Split("hopper"))
	if err != nil {
		return nil, err
	}
	candidates := []float64{903e6, 915e6, 927e6}
	best, err := bf.HopCenter(candidates, func(c float64) float64 {
		p, err := measure(c)
		if err != nil {
			return 0
		}
		return p
	})
	if err != nil {
		return nil, err
	}
	hopped, err := measure(best)
	if err != nil {
		return nil, err
	}
	res.AddRow(engine.Str("hopped"), engine.Number("%.1f", best/1e6), engine.Number("%.1f", 10*math.Log10(hopped)+30))
	res.AddNote("hop gain: %.1f dB out of the engineered fade", 10*math.Log10(hopped/fixed))
	_ = cfg
	return res, nil
}

func runAblationPhaseNoise(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("ablation-phasenoise", "Effective coherent-averaging gain and gastric decode vs phase drift (K=32)",
		engine.Col("drift", "rad²/period"), engine.Col("averaging gain retained", ""), engine.Col("gastric decodes", ""))
	trials := cfg.trials(20, 8)
	sc := scenario.NewSwine(scenario.Gastric)
	model := tag.StandardTag()
	sweep := engine.Sweep[float64, bool]{
		Trials: trials,
		Plan: func(float64) (uint64, string) {
			return cfg.Seed, "pn" // same placements across rows
		},
		Measure: func(drift float64, _ int, r *rng.Rand) (bool, error) {
			p, err := sc.Realize(8, r)
			if err != nil {
				return false, err
			}
			tg, err := tag.New(model, []byte{0xE2, 0x00, 0x12, 0x34}, r.Split("tag"))
			if err != nil {
				return false, err
			}
			chans := link.DownlinkCoeffs(p, 915e6)
			bcfg := core.DefaultConfig()
			bcfg.Antennas = 8
			bf, err := core.New(bcfg, r.Split("cib"))
			if err != nil {
				return false, err
			}
			peak, err := baseline.PeakReceivedPowerRefined(bf.Carriers(), chans, link.ScanDuration, link.ScanCoarse, link.ScanSamples)
			if err != nil {
				return false, err
			}
			tg.UpdatePower(peak)
			if !tg.Powered() {
				return false, nil
			}
			replyMsg := tg.HandleCommand(&gen2.Query{Q: 0})
			if replyMsg.Kind != gen2.ReplyRN16 {
				return false, nil
			}
			rd := reader.New()
			rd.PhaseDriftPerPeriod = drift
			// Weaken the reader so averaging is the binding constraint.
			rd.TxAmplitude = 0.2
			bs, err := tg.BackscatterWaveform(replyMsg, rd.SamplesPerHalfBit)
			if err != nil {
				return false, err
			}
			tagG := model.AntennaAmplitudeGain()
			lg := reader.RoundTripGain(rd.TxAmplitude, p.ReaderDown.Coefficient(rd.TxFreq), p.ReaderUp.Coefficient(rd.TxFreq)) * complex(tagG*tagG, 0)
			leak := p.CIBLeakPerWatt * 8 * link.ChainAmplitude() * link.ChainAmplitude()
			jam := []radio.ToneAt{{Freq: 915e6, Power: leak}}
			if dr, err := rd.DecodeUplink(bs, lg, jam, len(replyMsg.Bits), r.Split("ul")); err == nil && dr.Bits.Equal(replyMsg.Bits) {
				return true, nil
			}
			return false, nil
		},
		Row: func(drift float64, decoded []bool) ([]engine.Cell, error) {
			ok := 0
			for _, d := range decoded {
				if d {
					ok++
				}
			}
			return []engine.Cell{
				engine.Number("%.2f", drift),
				engine.Number("%.3f", reader.CoherentAveragingGain(32, drift)),
				engine.Counts(ok, trials),
			}, nil
		},
	}
	if err := sweep.RunIntoCtx(cfg.Context(), cfg.Limits, res, []float64{0, 0.05, 0.2, 0.5, 2}); err != nil {
		return nil, err
	}
	res.AddNote("drift 0 models the shared Octoclock reference; free-running oscillators forfeit most of the K=32 averaging gain")
	return res, nil
}

// multipathPoint is one multipath sweep point: a named profile and its
// position in the sweep (which seeds its trial streams).
type multipathPoint struct {
	index int
	name  string
	mp    em.MultipathProfile
}

func runAblationMultipath(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("ablation-multipath", "10-antenna CIB gain vs multipath richness (water tank)",
		engine.Col("environment", ""), engine.Col("median gain", ""), engine.Col("p10", ""), engine.Col("p90", ""))
	sweep := engine.Sweep[multipathPoint, GainSample]{
		Trials: cfg.trials(80, 20),
		Plan: func(p multipathPoint) (uint64, string) {
			return cfg.Seed + uint64(p.index*997), "gain-trial"
		},
		Measure: func(p multipathPoint, _ int, r *rng.Rand) (GainSample, error) {
			sc := scenario.NewTank(0.5, em.Water, 0.10)
			sc.Multipath = p.mp
			return MeasureGains(sc, 10, r)
		},
		Row: func(p multipathPoint, samples []GainSample) ([]engine.Cell, error) {
			sum, err := gainStats(samples, func(g GainSample) float64 { return g.CIB / g.Single })
			if err != nil {
				return nil, err
			}
			return []engine.Cell{
				engine.Str(p.name),
				engine.Number("%.1f", sum.Median),
				engine.Number("%.1f", sum.P10),
				engine.Number("%.1f", sum.P90),
			}, nil
		},
	}
	points := []multipathPoint{
		{0, "no multipath", em.MultipathProfile{}},
		{1, "line of sight", em.LOSProfile},
		{2, "indoor", em.DefaultIndoorProfile},
		{3, "rich scattering", em.RichProfile},
	}
	if err := sweep.RunIntoCtx(cfg.Context(), cfg.Limits, res, points); err != nil {
		return nil, err
	}
	res.AddNote("the median CIB gain holds across environments; richer scattering widens the distribution without destroying the gain (§3.7 robustness)")
	return res, nil
}
