package ivnsim

import (
	"fmt"
	"math"

	"ivn/internal/baseline"
	"ivn/internal/core"
	"ivn/internal/em"
	"ivn/internal/gen2"
	"ivn/internal/pool"
	"ivn/internal/radio"
	"ivn/internal/reader"
	"ivn/internal/rng"
	"ivn/internal/safety"
	"ivn/internal/scenario"
	"ivn/internal/stats"
	"ivn/internal/tag"
)

// Second ablation group: exposure safety, oscillator imperfections,
// center-frequency hopping, and multipath robustness.

func init() {
	register(Experiment{
		ID:    "ablation-safety",
		Title: "RF exposure: duty-cycled CIB vs a peak-equivalent continuous transmitter",
		Paper: "§7: CIB's intrinsic duty cycling makes it FCC compliant and safe for human exposure",
		Run:   runAblationSafety,
	})
	register(Experiment{
		ID:    "ablation-freqerror",
		Title: "CIB robustness to per-carrier frequency error",
		Paper: "§5: USRPs cannot stably generate small offsets, so the prototype soft-codes them; errors break the 1 s peak periodicity",
		Run:   runAblationFreqError,
	})
	register(Experiment{
		ID:    "ablation-hopping",
		Title: "Center-frequency hopping out of a deep frequency-selective fade",
		Paper: "§3.7: an extension may adaptively hop the center frequency to a different band",
		Run:   runAblationHopping,
	})
	register(Experiment{
		ID:    "ablation-phasenoise",
		Title: "Coherent averaging vs reader-link phase drift",
		Paper: "§5: the USRPs share a CDA-2900 reference; a free-running link would forfeit the 1 s averaging gain",
		Run:   runAblationPhaseNoise,
	})
	register(Experiment{
		ID:    "ablation-multipath",
		Title: "CIB gain vs multipath richness",
		Paper: "§3.7: CIB's design is inherently robust to phase changes caused by multipath",
		Run:   runAblationMultipath,
	})
}

func runAblationSafety(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "ablation-safety",
		Title:  "Surface exposure at 0.35 m, 10-chain CIB vs peak-equivalent CW",
		Header: []string{"transmitter", "avg SAR (W/kg)", "peak SAR (W/kg)", "compliant (1.6 W/kg avg)"},
	}
	r := rng.New(cfg.Seed)
	bcfg := core.DefaultConfig()
	bf, err := core.New(bcfg, r)
	if err != nil {
		return nil, err
	}
	// Duty-cycle profile of the actual plan.
	betas := make([]float64, bf.N())
	for i := range betas {
		if i > 0 {
			betas[i] = r.Phase()
		}
	}
	env := core.EnvelopeSeries(bf.Offsets, betas, 1, 8192, nil)
	dc, err := safety.AnalyzeEnvelope(env)
	if err != nil {
		return nil, err
	}
	g := math.Pow(10, 7.0/20)
	const dist = 0.35
	cib, err := safety.EvaluateSurface(bf.Carriers(), g, dist, em.Skin, math.Sqrt(dc.PAPR), 915e6)
	if err != nil {
		return nil, err
	}
	t.AddRow("10-chain CIB (duty-cycled)",
		fmt.Sprintf("%.3f", cib.AverageSAR),
		fmt.Sprintf("%.3f", cib.PeakSAR),
		fmt.Sprintf("%t", cib.Compliant()))

	// A continuous transmitter matching CIB's deliverable peak must run
	// PAPR× hotter on average.
	cwAvg := cib.AverageSAR * dc.PAPR
	t.AddRow("CW matching CIB's peak",
		fmt.Sprintf("%.3f", cwAvg),
		fmt.Sprintf("%.3f", cwAvg),
		fmt.Sprintf("%t", cwAvg <= safety.SARLimitWkg))

	eirp := safety.EIRPdBm(bf.Carriers(), 7)
	t.AddNote("CIB envelope PAPR %.1f, %.1f%% of time within 3 dB of peak", dc.PAPR, dc.FractionNearPeak*100)
	t.AddNote("per-chain EIRP %.1f dBm (FCC §15.247 limit %.0f dBm; compliant at 6 dBi antennas or 1 dB backoff)",
		eirp, safety.FCCMaxEIRPdBm)
	return t, nil
}

func runAblationFreqError(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "ablation-freqerror",
		Title:  "Peak gain and 10-period peak recurrence vs per-carrier frequency error (10 carriers)",
		Header: []string{"error σ (Hz)", "E[peak]/N", "peak recurrence after 10 s"},
	}
	trials := cfg.trials(40, 10)
	parent := rng.New(cfg.Seed)
	base := core.PaperOffsets()
	n := len(base)
	for _, sigma := range []float64{0, 0.05, 0.2, 0.5, 2, 10} {
		// Per-trial slots, summed in index order afterwards: float addition
		// is not associative, so the reduction order must not depend on
		// scheduling.
		label := fmt.Sprintf("fe-%v", sigma)
		peaks := make([]float64, trials)
		recurs := make([]float64, trials)
		err := forEachIndexed(trials, func(trial int) error {
			r := parent.SplitIndexed(label, trial)
			offsets := make([]float64, n)
			for i, f := range base {
				if i == 0 {
					offsets[i] = f
					continue
				}
				offsets[i] = f + sigma*r.NormFloat64()
			}
			betas := make([]float64, n)
			for i := range betas {
				if i > 0 {
					betas[i] = r.Phase()
				}
			}
			// Peak over the nominal 1 s period.
			buf := pool.Float64(4096)
			defer pool.PutFloat64(buf)
			series := core.EnvelopeSeries(offsets, betas, 1, 4096, buf)
			peak, idx := 0.0, 0
			for k, v := range series {
				if v > peak {
					peak, idx = v, k
				}
			}
			peaks[trial] = peak
			// The cyclic-operation guarantee: with exact integer offsets
			// the same peak recurs at t+10 s; frequency error dephases it.
			tPeak := float64(idx) / 4096
			recurs[trial] = core.Envelope(offsets, betas, tPeak+10) / peak
			return nil
		})
		if err != nil {
			return nil, err
		}
		var peakAcc, recurAcc float64
		for trial := 0; trial < trials; trial++ {
			peakAcc += peaks[trial]
			recurAcc += recurs[trial]
		}
		t.AddRow(
			fmt.Sprintf("%.2f", sigma),
			fmt.Sprintf("%.3f", peakAcc/float64(trials)/float64(n)),
			fmt.Sprintf("%.3f", recurAcc/float64(trials)),
		)
	}
	t.AddNote("the peak amplitude itself is insensitive to offset error (CIB stays blind-channel-safe)")
	t.AddNote("but errors above ~0.05 Hz break the every-T-seconds peak schedule (§3.6 cyclic constraint) — why the prototype soft-codes offsets digitally instead of trusting PLL steps")
	return t, nil
}

func runAblationHopping(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "ablation-hopping",
		Title:  "Delivered peak power in a deep 915 MHz fade, fixed center vs hopped",
		Header: []string{"strategy", "center (MHz)", "peak at sensor (dBm)"},
	}
	r := rng.New(cfg.Seed)
	// Construct a channel with a strong echo that nulls 915 MHz: delay τ
	// with e^{-j2πfτ} = −1 at 915 MHz (τ = k/915e6 + 1/(2·915e6)).
	tau := 100.5 / 915e6
	ch := em.NewChannel(em.Path{AirDistance: 1})
	ch.TxGain = math.Pow(10, 7.0/20)
	ch.Rays = []em.Ray{{ExtraDelay: tau, Gain: complex(0.9, 0)}}

	measure := func(center float64) (float64, error) {
		bcfg := core.DefaultConfig()
		bcfg.CenterFreq = center
		bf, err := core.New(bcfg, r.Split(fmt.Sprintf("bf-%v", center)))
		if err != nil {
			return 0, err
		}
		chans := make([]complex128, bf.N())
		for i := range chans {
			chans[i] = ch.Coefficient(center)
		}
		return baseline.PeakReceivedPowerRefined(bf.Carriers(), chans, scanDuration, envelopeScanCoarse, envelopeScanSamples)
	}

	fixed, err := measure(915e6)
	if err != nil {
		return nil, err
	}
	t.AddRow("fixed", "915.0", fmt.Sprintf("%.1f", 10*math.Log10(fixed)+30))

	// Hop: probe candidate ISM centers and move to the best.
	bcfg := core.DefaultConfig()
	bf, err := core.New(bcfg, r.Split("hopper"))
	if err != nil {
		return nil, err
	}
	candidates := []float64{903e6, 915e6, 927e6}
	best, err := bf.HopCenter(candidates, func(c float64) float64 {
		p, err := measure(c)
		if err != nil {
			return 0
		}
		return p
	})
	if err != nil {
		return nil, err
	}
	hopped, err := measure(best)
	if err != nil {
		return nil, err
	}
	t.AddRow("hopped", fmt.Sprintf("%.1f", best/1e6), fmt.Sprintf("%.1f", 10*math.Log10(hopped)+30))
	t.AddNote("hop gain: %.1f dB out of the engineered fade", 10*math.Log10(hopped/fixed))
	_ = cfg
	return t, nil
}

func runAblationPhaseNoise(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "ablation-phasenoise",
		Title:  "Effective coherent-averaging gain and gastric decode vs phase drift (K=32)",
		Header: []string{"drift (rad²/period)", "averaging gain retained", "gastric decodes"},
	}
	trials := cfg.trials(20, 8)
	parent := rng.New(cfg.Seed)
	sc := scenario.NewSwine(scenario.Gastric)
	model := tag.StandardTag()
	for _, drift := range []float64{0, 0.05, 0.2, 0.5, 2} {
		decoded := make([]bool, trials)
		err := forEachIndexed(trials, func(i int) error {
			r := parent.SplitIndexed("pn", i) // same placements across rows
			p, err := sc.Realize(8, r)
			if err != nil {
				return err
			}
			tg, err := tag.New(model, []byte{0xE2, 0x00, 0x12, 0x34}, r.Split("tag"))
			if err != nil {
				return err
			}
			chans := DownlinkCoeffs(p, 915e6)
			bcfg := core.DefaultConfig()
			bcfg.Antennas = 8
			bf, err := core.New(bcfg, r.Split("cib"))
			if err != nil {
				return err
			}
			peak, err := baseline.PeakReceivedPowerRefined(bf.Carriers(), chans, scanDuration, envelopeScanCoarse, envelopeScanSamples)
			if err != nil {
				return err
			}
			tg.UpdatePower(peak)
			if !tg.Powered() {
				return nil
			}
			replyMsg := tg.HandleCommand(&gen2.Query{Q: 0})
			if replyMsg.Kind != gen2.ReplyRN16 {
				return nil
			}
			rd := reader.New()
			rd.PhaseDriftPerPeriod = drift
			// Weaken the reader so averaging is the binding constraint.
			rd.TxAmplitude = 0.2
			bs, err := tg.BackscatterWaveform(replyMsg, rd.SamplesPerHalfBit)
			if err != nil {
				return err
			}
			tagG := model.AntennaAmplitudeGain()
			lg := reader.RoundTripGain(rd.TxAmplitude, p.ReaderDown.Coefficient(rd.TxFreq), p.ReaderUp.Coefficient(rd.TxFreq)) * complex(tagG*tagG, 0)
			leak := p.CIBLeakPerWatt * 8 * chainAmplitude() * chainAmplitude()
			jam := []radio.ToneAt{{Freq: 915e6, Power: leak}}
			if dr, err := rd.DecodeUplink(bs, lg, jam, len(replyMsg.Bits), r.Split("ul")); err == nil && dr.Bits.Equal(replyMsg.Bits) {
				decoded[i] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		ok := 0
		for _, d := range decoded {
			if d {
				ok++
			}
		}
		t.AddRow(
			fmt.Sprintf("%.2f", drift),
			fmt.Sprintf("%.3f", reader.CoherentAveragingGain(32, drift)),
			fmt.Sprintf("%d/%d", ok, trials),
		)
	}
	t.AddNote("drift 0 models the shared Octoclock reference; free-running oscillators forfeit most of the K=32 averaging gain")
	return t, nil
}

func runAblationMultipath(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "ablation-multipath",
		Title:  "10-antenna CIB gain vs multipath richness (water tank)",
		Header: []string{"environment", "median gain", "p10", "p90"},
	}
	trials := cfg.trials(80, 20)
	profiles := []struct {
		name string
		mp   em.MultipathProfile
	}{
		{"no multipath", em.MultipathProfile{}},
		{"line of sight", em.LOSProfile},
		{"indoor", em.DefaultIndoorProfile},
		{"rich scattering", em.RichProfile},
	}
	for pi, p := range profiles {
		sc := scenario.NewTank(0.5, em.Water, 0.10)
		sc.Multipath = p.mp
		samples, err := RunGainTrials(sc, 10, trials, cfg.Seed+uint64(pi*997))
		if err != nil {
			return nil, err
		}
		gains := make([]float64, len(samples))
		for i, s := range samples {
			gains[i] = s.CIB / s.Single
		}
		sum, err := stats.Summarize(gains)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.name,
			fmt.Sprintf("%.1f", sum.Median),
			fmt.Sprintf("%.1f", sum.P10),
			fmt.Sprintf("%.1f", sum.P90))
	}
	t.AddNote("the median CIB gain holds across environments; richer scattering widens the distribution without destroying the gain (§3.7 robustness)")
	return t, nil
}
