package ivnsim

import (
	"bytes"
	"strings"
	"testing"

	"ivn/internal/engine"
	"ivn/internal/rng"
	"ivn/internal/session"
)

// TestPopulationTablesIdenticalAcrossWorkerCap pins the N=1000
// experiments' determinism contract along the -parallel axis: the
// event-level channel draws every slot outcome from split rng streams,
// so worker count must never leak into a table byte.
func TestPopulationTablesIdenticalAcrossWorkerCap(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Seed: 7, Quick: true}
	for _, id := range []string{"population", "adaptiveq"} {
		cfg.Limits = engine.Limits{MaxParallel: 1}
		tabOne, err := mustRun(t, id, cfg)
		if err != nil {
			t.Fatalf("%s at -parallel 1: %v", id, err)
		}
		one := renderedTable(tabOne)
		cfg.Limits = engine.Limits{MaxParallel: 4}
		tabFour, err := mustRun(t, id, cfg)
		if err != nil {
			t.Fatalf("%s at -parallel 4: %v", id, err)
		}
		if four := renderedTable(tabFour); four != one {
			t.Errorf("%s: table differs between -parallel 1 and 4:\nserial:\n%s\nparallel:\n%s", id, one, four)
		}
	}
}

// TestPopulationTracedMatchesUntraced extends the trace-transparency
// contract to the population family: attaching a trace log must not
// change a table byte, and every trial must commit a span keyed by its
// sweep label.
func TestPopulationTracedMatchesUntraced(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e, err := ByID("population")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 11, Quick: true}
	plain, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tlog := session.NewTraceLog()
	cfg.Trace = tlog
	traced, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderText(t, plain), renderText(t, traced)) {
		t.Fatal("population: traced table differs from untraced")
	}
	keys := tlog.Keys()
	wantSpans := len(populationSizes(true)) * cfg.trials(6, 2)
	if len(keys) != wantSpans {
		t.Fatalf("recorded %d spans, want %d", len(keys), wantSpans)
	}
	for _, k := range keys {
		if !strings.HasPrefix(k, "population-") {
			t.Fatalf("unexpected span key %q", k)
		}
		if len(tlog.Events(k)) == 0 {
			t.Fatalf("span %q recorded no events", k)
		}
	}
}

// TestPopulationShape sanity-checks the trial mechanics at a small size
// without pinning golden numbers: every row must account for its slots,
// and an inventory at the waterfall must read some but rarely all tags
// within the round budget.
func TestPopulationShape(t *testing.T) {
	res, err := runPopulationTrial(64, 4, true, popRounds, 12*64+256, nil, rng.New(5).Split("population-shape"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 64 {
		t.Fatalf("total = %d", res.Total)
	}
	if res.Read == 0 {
		t.Fatal("waterfall inventory read nothing")
	}
	if res.Slots != res.Singles+res.Captures+res.Collisions+res.Empties {
		t.Fatalf("slot ledger: %d slots vs %d+%d+%d+%d", res.Slots, res.Singles, res.Captures, res.Collisions, res.Empties)
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Fatalf("fairness = %g outside (0,1]", res.Fairness)
	}
	if res.QueryAdjusts == 0 {
		t.Fatal("floating-Q round issued no QueryAdjusts")
	}
}
