package ivnsim

import (
	"bytes"
	"strings"
	"testing"

	"ivn/internal/engine"
	"ivn/internal/session"
)

// renderText renders a result to bytes for comparison.
func renderText(t *testing.T, res *engine.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := engine.RenderText(res, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTracedRunMatchesUntraced extends the renderer-equivalence suite
// across the observability seam: attaching a trace log to an experiment
// must not change one byte of its table, and the log must actually fill.
func TestTracedRunMatchesUntraced(t *testing.T) {
	for _, id := range []string{"fig12", "invivo"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := e.Run(Config{Seed: 11, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		tlog := session.NewTraceLog()
		traced, err := e.Run(Config{Seed: 11, Quick: true, Trace: tlog})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderText(t, plain), renderText(t, traced)) {
			t.Fatalf("%s: traced table differs from untraced", id)
		}
		keys := tlog.Keys()
		if len(keys) == 0 {
			t.Fatalf("%s: traced run recorded no spans", id)
		}
		for _, k := range keys {
			if !strings.HasPrefix(k, id) && !strings.HasPrefix(k, "invivo-") {
				t.Fatalf("%s: unexpected span key %q", id, k)
			}
			if len(tlog.Events(k)) == 0 {
				t.Fatalf("%s: span %q committed empty", id, k)
			}
		}
	}
}

// TestTraceLogByteIdenticalAcrossParallel serializes the fig12 trace at
// two worker-pool widths and requires identical bytes — the acceptance
// bar for -trace determinism at any GOMAXPROCS.
func TestTraceLogByteIdenticalAcrossParallel(t *testing.T) {
	run := func(workers int) []byte {
		e, err := ByID("fig12")
		if err != nil {
			t.Fatal(err)
		}
		tlog := session.NewTraceLog()
		if _, err := e.Run(Config{Seed: 3, Quick: true, Trace: tlog, Limits: engine.Limits{MaxParallel: workers}}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tlog.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := run(1)
	b := run(4)
	if len(a) == 0 {
		t.Fatal("empty trace serialization")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("trace JSONL differs between -parallel 1 and 4")
	}
}
