package ivnsim

import (
	"fmt"
	"math"
	"math/cmplx"

	"ivn/internal/engine"
	"ivn/internal/gen2"
	"ivn/internal/link"
	"ivn/internal/radio"
	"ivn/internal/reader"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

// In-vivo experiments: the §6.2 swine results and the Fig. 15 waveforms.

func init() {
	register(Experiment{
		ID:    "invivo",
		Title: "In-vivo communication success by placement and tag (swine model)",
		Paper: "gastric standard: 3/6; gastric miniature: 0; subcutaneous: all trials succeed",
		Run:   runInVivo,
	})
	register(Experiment{
		ID:    "fig15a",
		Title: "Decoded backscatter waveform: standard tag in the stomach",
		Paper: "time-domain response with preamble correlation > 0.8 and decoded bits",
		Run: func(cfg Config) (*engine.Result, error) {
			return runFig15(cfg, "fig15a", scenario.NewSwine(scenario.Gastric), tag.StandardTag())
		},
	})
	register(Experiment{
		ID:    "fig15b",
		Title: "Decoded backscatter waveform: miniature tag subcutaneous",
		Paper: "time-domain response with preamble correlation > 0.8 and decoded bits",
		Run: func(cfg Config) (*engine.Result, error) {
			return runFig15(cfg, "fig15b", scenario.NewSwine(scenario.Subcutaneous), tag.MiniatureTag())
		},
	})
}

// invivoCase is one swine sweep point: a placement/tag pairing and its
// position in the sweep (which labels its trial streams).
type invivoCase struct {
	index int
	sc    *scenario.Swine
	model tag.Model
}

func runInVivo(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("invivo", "Swine communication sessions (8-antenna CIB, out-of-band reader)",
		engine.Col("placement", ""), engine.Col("tag", ""), engine.Col("powered", ""), engine.Col("decoded", ""), engine.Col("sessions", ""))
	trials := cfg.trials(6, 4)
	sweep := engine.Sweep[invivoCase, CommTrial]{
		Trials: trials,
		Plan: func(c invivoCase) (uint64, string) {
			return cfg.Seed, fmt.Sprintf("invivo-%d", c.index)
		},
		Measure: func(c invivoCase, i int, r *rng.Rand) (CommTrial, error) {
			opts := CommOptions{Waveform: true}
			if cfg.Trace != nil {
				tr, commit := cfg.Trace.Span(fmt.Sprintf("invivo-%d/%04d", c.index, i))
				defer commit() // defers run at Measure return, after the trial
				opts.Trace = tr
			}
			return RunCommTrial(c.sc, 8, c.model, opts, r)
		},
		Row: func(c invivoCase, sessions []CommTrial) ([]engine.Cell, error) {
			powered, decoded := 0, 0
			for _, tr := range sessions {
				if tr.Powered {
					powered++
				}
				if tr.Powered && tr.Decoded {
					decoded++
				}
			}
			return []engine.Cell{
				engine.Str(c.sc.Placement.String()),
				engine.Str(c.model.Name),
				engine.Counts(powered, trials),
				engine.Counts(decoded, trials),
				engine.Int(trials),
			}, nil
		},
	}
	cases := []invivoCase{
		{0, scenario.NewSwine(scenario.Gastric), tag.StandardTag()},
		{1, scenario.NewSwine(scenario.Gastric), tag.MiniatureTag()},
		{2, scenario.NewSwine(scenario.Subcutaneous), tag.StandardTag()},
		{3, scenario.NewSwine(scenario.Subcutaneous), tag.MiniatureTag()},
	}
	if err := sweep.RunIntoCtx(cfg.Context(), cfg.Limits, res, cases); err != nil {
		return nil, err
	}
	res.AddNote("success criterion: FM0 preamble correlation > 0.8 after coherent averaging (paper §6.2)")
	res.AddNote("each session re-places the tag with fresh position, orientation and breathing state")
	return res, nil
}

func runFig15(cfg Config, id string, sc *scenario.Swine, model tag.Model) (*engine.Result, error) {
	res := engine.NewResult(id,
		fmt.Sprintf("Backscatter waveform and decoded bits: %s tag, %s placement", model.Name, sc.Placement),
		engine.Col("half-bit index", ""), engine.Col("mean level", "µV"))
	parent := rng.New(cfg.Seed)
	// Find a successful session (the paper likewise shows a sample output
	// from a successful trial). The attempts are a sequential search — each
	// stops as soon as one succeeds — so this stays off the scheduler.
	maxAttempts := 40
	for attempt := 0; attempt < maxAttempts; attempt++ {
		r := parent.SplitIndexed("fig15", attempt)
		p, err := sc.Realize(8, r)
		if err != nil {
			return nil, err
		}
		tr, err := runCommAt(p, 8, model, CommOptions{Waveform: true}, r)
		if err != nil {
			return nil, err
		}
		if !(tr.Powered && tr.Decoded) {
			continue
		}
		// Re-synthesize the same session's waveform for display.
		r2 := parent.SplitIndexed("fig15", attempt) // same stream
		p2, err := sc.Realize(8, r2)
		if err != nil {
			return nil, err
		}
		tg, err := tag.New(model, []byte{0xE2, 0x00, 0x12, 0x34}, r2.Split("tag"))
		if err != nil {
			return nil, err
		}
		_ = p2
		tg.UpdatePower(tr.PeakPower)
		reply := tg.HandleCommand(&gen2.Query{Q: 0})
		rd := reader.New()
		bs, err := tg.BackscatterWaveform(reply, rd.SamplesPerHalfBit)
		if err != nil {
			return nil, err
		}
		down := p.ReaderDown.Coefficient(rd.TxFreq)
		up := p.ReaderUp.Coefficient(rd.TxFreq)
		tagG := model.AntennaAmplitudeGain()
		gain := reader.RoundTripGain(rd.TxAmplitude, down, up) * complex(tagG*tagG, 0)
		leak := p.CIBLeakPerWatt * 8 * link.ChainAmplitude() * link.ChainAmplitude()
		jam := []radio.ToneAt{{Freq: 915e6, Power: leak}}
		dr, err := rd.DecodeUplink(bs, gain, jam, len(reply.Bits), r2.Split("uplink"))
		if err != nil {
			continue
		}
		// Render the post-averaging received waveform the decoder saw:
		// backscatter levels through the link plus residual noise.
		sp := rd.SamplesPerHalfBit
		noise := rd.RX.NoiseFloor + rd.RX.EffectiveInterference(jam)
		sigma := mathSqrt(noise / 2 / float64(rd.AveragingPeriods))
		dispR := r2.Split("display-noise")
		halfBits := len(bs) / sp
		for hb := 0; hb < halfBits; hb++ {
			var mean float64
			for k := 0; k < sp; k++ {
				mean += bs[hb*sp+k]*absC(gain) + sigma*dispR.NormFloat64()
			}
			mean /= float64(sp)
			res.AddRow(engine.Int(hb), engine.Number("%.4f", mean*1e6))
		}
		res.AddNote("decoded RN16 bits: %s", dr.Bits)
		res.AddNote("preamble correlation %.3f (threshold 0.8); post-averaging SNR %.1f dB", dr.Correlation, dr.SNRdB)
		res.AddNote("session found on attempt %d; CIB peak at sensor %.2e W", attempt+1, tr.PeakPower)
		return res, nil
	}
	return nil, fmt.Errorf("ivnsim: no successful %s session in %d attempts", id, maxAttempts)
}

func absC(z complex128) float64 { return cmplx.Abs(z) }

func mathSqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
