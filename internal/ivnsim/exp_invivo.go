package ivnsim

import (
	"fmt"
	"math"
	"math/cmplx"

	"ivn/internal/gen2"
	"ivn/internal/radio"
	"ivn/internal/reader"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

// In-vivo experiments: the §6.2 swine results and the Fig. 15 waveforms.

func init() {
	register(Experiment{
		ID:    "invivo",
		Title: "In-vivo communication success by placement and tag (swine model)",
		Paper: "gastric standard: 3/6; gastric miniature: 0; subcutaneous: all trials succeed",
		Run:   runInVivo,
	})
	register(Experiment{
		ID:    "fig15a",
		Title: "Decoded backscatter waveform: standard tag in the stomach",
		Paper: "time-domain response with preamble correlation > 0.8 and decoded bits",
		Run: func(cfg Config) (*Table, error) {
			return runFig15(cfg, "fig15a", scenario.NewSwine(scenario.Gastric), tag.StandardTag())
		},
	})
	register(Experiment{
		ID:    "fig15b",
		Title: "Decoded backscatter waveform: miniature tag subcutaneous",
		Paper: "time-domain response with preamble correlation > 0.8 and decoded bits",
		Run: func(cfg Config) (*Table, error) {
			return runFig15(cfg, "fig15b", scenario.NewSwine(scenario.Subcutaneous), tag.MiniatureTag())
		},
	})
}

func runInVivo(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "invivo",
		Title:  "Swine communication sessions (8-antenna CIB, out-of-band reader)",
		Header: []string{"placement", "tag", "powered", "decoded", "sessions"},
	}
	trials := cfg.trials(6, 4)
	parent := rng.New(cfg.Seed)
	cases := []struct {
		sc    *scenario.Swine
		model tag.Model
	}{
		{scenario.NewSwine(scenario.Gastric), tag.StandardTag()},
		{scenario.NewSwine(scenario.Gastric), tag.MiniatureTag()},
		{scenario.NewSwine(scenario.Subcutaneous), tag.StandardTag()},
		{scenario.NewSwine(scenario.Subcutaneous), tag.MiniatureTag()},
	}
	for ci, c := range cases {
		// Sessions are independent; run them on the worker pool and count
		// afterwards (counts are order-independent, so the table is
		// identical at any GOMAXPROCS).
		label := fmt.Sprintf("invivo-%d", ci)
		sessions := make([]CommTrial, trials)
		err := forEachIndexed(trials, func(i int) error {
			r := parent.SplitIndexed(label, i)
			tr, err := RunCommTrial(c.sc, 8, c.model, CommOptions{Waveform: true}, r)
			if err != nil {
				return err
			}
			sessions[i] = tr
			return nil
		})
		if err != nil {
			return nil, err
		}
		powered, decoded := 0, 0
		for _, tr := range sessions {
			if tr.Powered {
				powered++
			}
			if tr.Powered && tr.Decoded {
				decoded++
			}
		}
		t.AddRow(
			c.sc.Placement.String(),
			c.model.Name,
			fmt.Sprintf("%d/%d", powered, trials),
			fmt.Sprintf("%d/%d", decoded, trials),
			fmt.Sprintf("%d", trials),
		)
	}
	t.AddNote("success criterion: FM0 preamble correlation > 0.8 after coherent averaging (paper §6.2)")
	t.AddNote("each session re-places the tag with fresh position, orientation and breathing state")
	return t, nil
}

func runFig15(cfg Config, id string, sc *scenario.Swine, model tag.Model) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Backscatter waveform and decoded bits: %s tag, %s placement", model.Name, sc.Placement),
		Header: []string{"half-bit index", "mean level (µV)"},
	}
	parent := rng.New(cfg.Seed)
	// Find a successful session (the paper likewise shows a sample output
	// from a successful trial).
	maxAttempts := 40
	for attempt := 0; attempt < maxAttempts; attempt++ {
		r := parent.SplitIndexed("fig15", attempt)
		p, err := sc.Realize(8, r)
		if err != nil {
			return nil, err
		}
		tr, err := runCommAt(p, 8, model, CommOptions{Waveform: true}, r)
		if err != nil {
			return nil, err
		}
		if !(tr.Powered && tr.Decoded) {
			continue
		}
		// Re-synthesize the same session's waveform for display.
		r2 := parent.SplitIndexed("fig15", attempt) // same stream
		p2, err := sc.Realize(8, r2)
		if err != nil {
			return nil, err
		}
		tg, err := tag.New(model, []byte{0xE2, 0x00, 0x12, 0x34}, r2.Split("tag"))
		if err != nil {
			return nil, err
		}
		_ = p2
		tg.UpdatePower(tr.PeakPower)
		reply := tg.HandleCommand(&gen2.Query{Q: 0})
		rd := reader.New()
		bs, err := tg.BackscatterWaveform(reply, rd.SamplesPerHalfBit)
		if err != nil {
			return nil, err
		}
		down := p.ReaderDown.Coefficient(rd.TxFreq)
		up := p.ReaderUp.Coefficient(rd.TxFreq)
		tagG := model.AntennaAmplitudeGain()
		link := reader.RoundTripGain(rd.TxAmplitude, down, up) * complex(tagG*tagG, 0)
		leak := p.CIBLeakPerWatt * 8 * chainAmplitude() * chainAmplitude()
		jam := []radio.ToneAt{{Freq: 915e6, Power: leak}}
		dr, err := rd.DecodeUplink(bs, link, jam, len(reply.Bits), r2.Split("uplink"))
		if err != nil {
			continue
		}
		// Render the post-averaging received waveform the decoder saw:
		// backscatter levels through the link plus residual noise.
		sp := rd.SamplesPerHalfBit
		noise := rd.RX.NoiseFloor + rd.RX.EffectiveInterference(jam)
		sigma := mathSqrt(noise / 2 / float64(rd.AveragingPeriods))
		dispR := r2.Split("display-noise")
		halfBits := len(bs) / sp
		for hb := 0; hb < halfBits; hb++ {
			var mean float64
			for k := 0; k < sp; k++ {
				mean += bs[hb*sp+k]*absC(link) + sigma*dispR.NormFloat64()
			}
			mean /= float64(sp)
			t.AddRow(fmt.Sprintf("%d", hb), fmt.Sprintf("%.4f", mean*1e6))
		}
		t.AddNote("decoded RN16 bits: %s", dr.Bits)
		t.AddNote("preamble correlation %.3f (threshold 0.8); post-averaging SNR %.1f dB", dr.Correlation, dr.SNRdB)
		t.AddNote("session found on attempt %d; CIB peak at sensor %.2e W", attempt+1, tr.PeakPower)
		return t, nil
	}
	return nil, fmt.Errorf("ivnsim: no successful %s session in %d attempts", id, maxAttempts)
}

func absC(z complex128) float64 { return cmplx.Abs(z) }

func mathSqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
