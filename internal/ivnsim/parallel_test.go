package ivnsim

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachIndexedRunsAll(t *testing.T) {
	var count int64
	hit := make([]bool, 100)
	err := forEachIndexed(100, func(i int) error {
		atomic.AddInt64(&count, 1)
		hit[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("ran %d of 100", count)
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("index %d never ran", i)
		}
	}
}

func TestForEachIndexedFirstErrorByIndex(t *testing.T) {
	// Multiple failures: the lowest-indexed error must surface, so error
	// reporting is deterministic regardless of scheduling.
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for round := 0; round < 10; round++ {
		err := forEachIndexed(50, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 33:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("round %d: got %v, want the index-7 error", round, err)
		}
	}
}

func TestForEachIndexedEmpty(t *testing.T) {
	if err := forEachIndexed(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := forEachIndexed(-3, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// renderedTable flattens a table to one comparable string.
func renderedTable(tab *Table) string {
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		return "render error: " + err.Error()
	}
	return sb.String()
}

func TestTablesIdenticalAcrossGOMAXPROCS(t *testing.T) {
	// The determinism contract of the parallel trial loops: for a fixed
	// seed, every experiment table is byte-identical whether trials run
	// serially (GOMAXPROCS=1) or concurrently. Covers the experiments
	// whose trial loops run through forEachIndexed.
	if testing.Short() {
		t.Skip("short mode")
	}
	ids := []string{"fig9", "invivo", "ablation-equalpower", "ablation-flatness",
		"ablation-averaging", "ablation-freqerror", "ablation-miller", "fig13a"}
	cfg := Config{Seed: 42, Quick: true}

	prev := runtime.GOMAXPROCS(1)
	serial := make(map[string]string)
	for _, id := range ids {
		tab, err := mustRun(t, id, cfg)
		if err != nil {
			runtime.GOMAXPROCS(prev)
			t.Fatalf("%s serial: %v", id, err)
		}
		serial[id] = renderedTable(tab)
	}
	runtime.GOMAXPROCS(prev)
	if prev == 1 {
		prev = 4 // force a genuinely concurrent second pass on 1-CPU hosts
	}
	runtime.GOMAXPROCS(prev)
	for _, id := range ids {
		tab, err := mustRun(t, id, cfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if got := renderedTable(tab); got != serial[id] {
			t.Errorf("%s: table differs between GOMAXPROCS=1 and %d:\nserial:\n%s\nparallel:\n%s",
				id, prev, serial[id], got)
		}
	}
}

func TestMaxParallelPositive(t *testing.T) {
	if maxParallel() < 1 {
		t.Fatalf("maxParallel() = %d", maxParallel())
	}
}

func BenchmarkForEachIndexedOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = forEachIndexed(16, func(int) error { return nil })
	}
}
