package ivnsim

import (
	"runtime"
	"strings"
	"testing"
)

// The scheduler's own unit tests live with it in internal/engine; this
// file keeps the end-to-end determinism check at the experiment level.

// renderedTable flattens a table to one comparable string.
func renderedTable(tab *Table) string {
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		return "render error: " + err.Error()
	}
	return sb.String()
}

func TestTablesIdenticalAcrossGOMAXPROCS(t *testing.T) {
	// The determinism contract of the parallel trial loops: for a fixed
	// seed, every experiment table is byte-identical whether trials run
	// serially (GOMAXPROCS=1) or concurrently. Covers the experiments
	// whose trial loops run through the engine scheduler.
	if testing.Short() {
		t.Skip("short mode")
	}
	ids := []string{"fig9", "invivo", "ablation-equalpower", "ablation-flatness",
		"ablation-averaging", "ablation-freqerror", "ablation-miller", "fig13a"}
	cfg := Config{Seed: 42, Quick: true}

	prev := runtime.GOMAXPROCS(1)
	serial := make(map[string]string)
	for _, id := range ids {
		tab, err := mustRun(t, id, cfg)
		if err != nil {
			runtime.GOMAXPROCS(prev)
			t.Fatalf("%s serial: %v", id, err)
		}
		serial[id] = renderedTable(tab)
	}
	runtime.GOMAXPROCS(prev)
	if prev == 1 {
		prev = 4 // force a genuinely concurrent second pass on 1-CPU hosts
	}
	runtime.GOMAXPROCS(prev)
	for _, id := range ids {
		tab, err := mustRun(t, id, cfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if got := renderedTable(tab); got != serial[id] {
			t.Errorf("%s: table differs between GOMAXPROCS=1 and %d:\nserial:\n%s\nparallel:\n%s",
				id, prev, serial[id], got)
		}
	}
}
