package ivnsim

import (
	"runtime"
	"strings"
	"testing"

	"ivn/internal/engine"
)

// The scheduler's own unit tests live with it in internal/engine; this
// file keeps the end-to-end determinism check at the experiment level.

// renderedTable flattens a table to one comparable string.
func renderedTable(tab *Table) string {
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		return "render error: " + err.Error()
	}
	return sb.String()
}

// TestTablesIdenticalAcrossWorkerCap is the same contract along the other
// concurrency axis: the engine's -parallel worker cap. It specifically
// guards the batched scratch paths — with one worker a single kit serves
// every trial of a sweep; with four workers trials land on different kits
// in scheduling-dependent order — so any leakage of worker state into
// results shows up as a table diff. Fig9 covers the batched gain sweep,
// fig13c the batched range search.
func TestTablesIdenticalAcrossWorkerCap(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ids := []string{"fig9", "fig13c"}
	cfg := Config{Seed: 42, Quick: true}
	for _, id := range ids {
		cfg.Limits = engine.Limits{MaxParallel: 1}
		tabOne, err := mustRun(t, id, cfg)
		if err != nil {
			t.Fatalf("%s at -parallel 1: %v", id, err)
		}
		one := renderedTable(tabOne)
		cfg.Limits = engine.Limits{MaxParallel: 4}
		tabFour, err := mustRun(t, id, cfg)
		if err != nil {
			t.Fatalf("%s at -parallel 4: %v", id, err)
		}
		if four := renderedTable(tabFour); four != one {
			t.Errorf("%s: table differs between -parallel 1 and 4:\nserial:\n%s\nparallel:\n%s", id, one, four)
		}
	}
}

func TestTablesIdenticalAcrossGOMAXPROCS(t *testing.T) {
	// The determinism contract of the parallel trial loops: for a fixed
	// seed, every experiment table is byte-identical whether trials run
	// serially (GOMAXPROCS=1) or concurrently. Covers the experiments
	// whose trial loops run through the engine scheduler.
	if testing.Short() {
		t.Skip("short mode")
	}
	ids := []string{"fig9", "invivo", "ablation-equalpower", "ablation-flatness",
		"ablation-averaging", "ablation-freqerror", "ablation-miller", "fig13a"}
	cfg := Config{Seed: 42, Quick: true}

	prev := runtime.GOMAXPROCS(1)
	serial := make(map[string]string)
	for _, id := range ids {
		tab, err := mustRun(t, id, cfg)
		if err != nil {
			runtime.GOMAXPROCS(prev)
			t.Fatalf("%s serial: %v", id, err)
		}
		serial[id] = renderedTable(tab)
	}
	runtime.GOMAXPROCS(prev)
	if prev == 1 {
		prev = 4 // force a genuinely concurrent second pass on 1-CPU hosts
	}
	runtime.GOMAXPROCS(prev)
	for _, id := range ids {
		tab, err := mustRun(t, id, cfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if got := renderedTable(tab); got != serial[id] {
			t.Errorf("%s: table differs between GOMAXPROCS=1 and %d:\nserial:\n%s\nparallel:\n%s",
				id, prev, serial[id], got)
		}
	}
}
