package ivnsim

import (
	"fmt"
	"math"

	"ivn/internal/circuit"
	"ivn/internal/em"
	"ivn/internal/tag"
)

// Microbenchmark experiments: the paper's explanatory figures (2-4), which
// characterize the substrates rather than the beamformer.

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Diode I-V curves: ideal vs realistic (threshold) diode",
		Paper: "realistic diodes conduct only above Vth ≈ 200-400 mV",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Signal power loss vs distance: air vs tissue",
		Paper: "air decays as 1/r²; tissue adds ~2.3-6.9 dB/cm exponential loss",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Threshold impact: conduction angle in air / shallow / deep tissue",
		Paper: "conduction angle shrinks with depth and hits zero in deep tissue",
		Run:   runFig4,
	})
}

func runFig2(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig2",
		Title:  "Diode I-V curves (ideal vs realistic)",
		Header: []string{"V (V)", "I_ideal (mA)", "I_realistic (mA)"},
	}
	const vth = 0.3
	ideal := circuit.IdealDiode{OnConductance: 0.02}
	realistic := circuit.ThresholdDiode{Vth: vth, OnConductance: 0.02}
	points := 17
	if cfg.Quick {
		points = 9
	}
	volts, iIdeal, err := circuit.IVCurve(ideal, -0.2, 0.6, points)
	if err != nil {
		return nil, err
	}
	_, iReal, err := circuit.IVCurve(realistic, -0.2, 0.6, points)
	if err != nil {
		return nil, err
	}
	for i, v := range volts {
		t.AddRow(
			fmt.Sprintf("%.3f", v),
			fmt.Sprintf("%.3f", iIdeal[i]*1e3),
			fmt.Sprintf("%.3f", iReal[i]*1e3),
		)
	}
	t.AddNote("realistic diode threshold Vth = %.0f mV (paper: 200-400 mV for IC processes)", vth*1e3)
	return t, nil
}

func runFig3(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig3",
		Title:  "Normalized signal power loss vs distance, air vs muscle tissue",
		Header: []string{"distance (cm)", "air loss (dB)", "tissue loss (dB)"},
	}
	const freq = 915e6
	ref := em.Path{AirDistance: 0.10} // normalize at 10 cm
	refLoss := ref.LossDB(freq)
	step := 1
	if cfg.Quick {
		step = 2
	}
	for cm := 10; cm <= 30; cm += step {
		d := float64(cm) / 100
		air := em.Path{AirDistance: d}
		// Tissue: first 10 cm in air, remainder in muscle.
		tissue := em.Path{AirDistance: 0.10, Layers: []em.Layer{{Medium: em.Muscle, Thickness: d - 0.10}}}
		t.AddRow(
			fmt.Sprintf("%d", cm),
			fmt.Sprintf("%.2f", air.LossDB(freq)-refLoss),
			fmt.Sprintf("%.2f", tissue.LossDB(freq)-refLoss),
		)
	}
	t.AddNote("muscle loss %.2f dB/cm at 915 MHz (paper: 2.3-6.9 dB/cm)", em.Muscle.LossDBPerCM(freq))
	t.AddNote("air follows 1/r² (≈6 dB per distance doubling); tissue adds an exponential term")
	return t, nil
}

func runFig4(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "Threshold impact on RF harvesting across the three regimes",
		Header: []string{"regime", "peak V at rectifier (V)", "conduction angle (fraction)", "V_DC (V)"},
	}
	model := tag.StandardTag()
	// Three placements: 1 m air, 3 cm muscle, 8 cm muscle — matching the
	// figure's close/shallow/deep storyboard. Single 30 dBm / 7 dBi chain.
	cases := []struct {
		name string
		path em.Path
	}{
		{"(a) close in air", em.Path{AirDistance: 1}},
		{"(b) shallow tissue", em.Path{AirDistance: 0.5, Layers: []em.Layer{{Medium: em.Muscle, Thickness: 0.05}}}},
		{"(c) deep tissue", em.Path{AirDistance: 0.5, Layers: []em.Layer{{Medium: em.Muscle, Thickness: 0.13}}}},
	}
	txAmp := chainAmplitude() * 2.2387 // 7 dBi antenna amplitude gain
	rect := model.Rectifier()
	var angles []float64
	for _, c := range cases {
		amp := txAmp * c.path.Amplitude(915e6)
		rxPower := amp * amp * math.Pow(10, model.GainDBi/10)
		v := model.InputVoltage(rxPower)
		w := circuit.ConductionAngle(v, model.ThresholdVoltage)
		vdc := rect.SteadyStateVoltage(v)
		angles = append(angles, w)
		t.AddRow(
			c.name,
			fmt.Sprintf("%.3f", v),
			fmt.Sprintf("%.3f", w),
			fmt.Sprintf("%.3f", vdc),
		)
	}
	if len(angles) == 3 {
		t.AddNote("conduction angle ordering a > b > c = %t; deep-tissue angle = %v (paper: zero)",
			angles[0] > angles[1] && angles[1] > angles[2], angles[2])
	}
	_ = cfg
	return t, nil
}
