package ivnsim

import (
	"math"

	"ivn/internal/circuit"
	"ivn/internal/em"
	"ivn/internal/engine"
	"ivn/internal/link"
	"ivn/internal/tag"
)

// Microbenchmark experiments: the paper's explanatory figures (2-4), which
// characterize the substrates rather than the beamformer. Analytic — no
// trial schedule, so they build their results directly.

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Diode I-V curves: ideal vs realistic (threshold) diode",
		Paper: "realistic diodes conduct only above Vth ≈ 200-400 mV",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Signal power loss vs distance: air vs tissue",
		Paper: "air decays as 1/r²; tissue adds ~2.3-6.9 dB/cm exponential loss",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Threshold impact: conduction angle in air / shallow / deep tissue",
		Paper: "conduction angle shrinks with depth and hits zero in deep tissue",
		Run:   runFig4,
	})
}

func runFig2(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("fig2", "Diode I-V curves (ideal vs realistic)",
		engine.Col("V", "V"), engine.Col("I_ideal", "mA"), engine.Col("I_realistic", "mA"))
	const vth = 0.3
	ideal := circuit.IdealDiode{OnConductance: 0.02}
	realistic := circuit.ThresholdDiode{Vth: vth, OnConductance: 0.02}
	points := 17
	if cfg.Quick {
		points = 9
	}
	volts, iIdeal, err := circuit.IVCurve(ideal, -0.2, 0.6, points)
	if err != nil {
		return nil, err
	}
	_, iReal, err := circuit.IVCurve(realistic, -0.2, 0.6, points)
	if err != nil {
		return nil, err
	}
	for i, v := range volts {
		res.AddRow(
			engine.Number("%.3f", v),
			engine.Number("%.3f", iIdeal[i]*1e3),
			engine.Number("%.3f", iReal[i]*1e3),
		)
	}
	res.AddNote("realistic diode threshold Vth = %.0f mV (paper: 200-400 mV for IC processes)", vth*1e3)
	return res, nil
}

func runFig3(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("fig3", "Normalized signal power loss vs distance, air vs muscle tissue",
		engine.Col("distance", "cm"), engine.Col("air loss", "dB"), engine.Col("tissue loss", "dB"))
	const freq = 915e6
	ref := em.Path{AirDistance: 0.10} // normalize at 10 cm
	refLoss := ref.LossDB(freq)
	step := 1
	if cfg.Quick {
		step = 2
	}
	for cm := 10; cm <= 30; cm += step {
		d := float64(cm) / 100
		air := em.Path{AirDistance: d}
		// Tissue: first 10 cm in air, remainder in muscle.
		tissue := em.Path{AirDistance: 0.10, Layers: []em.Layer{{Medium: em.Muscle, Thickness: d - 0.10}}}
		res.AddRow(
			engine.Int(cm),
			engine.Number("%.2f", air.LossDB(freq)-refLoss),
			engine.Number("%.2f", tissue.LossDB(freq)-refLoss),
		)
	}
	res.AddNote("muscle loss %.2f dB/cm at 915 MHz (paper: 2.3-6.9 dB/cm)", em.Muscle.LossDBPerCM(freq))
	res.AddNote("air follows 1/r² (≈6 dB per distance doubling); tissue adds an exponential term")
	return res, nil
}

func runFig4(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("fig4", "Threshold impact on RF harvesting across the three regimes",
		engine.Col("regime", ""), engine.Col("peak V at rectifier", "V"), engine.Col("conduction angle", "fraction"), engine.Col("V_DC", "V"))
	model := tag.StandardTag()
	// Three placements: 1 m air, 3 cm muscle, 8 cm muscle — matching the
	// figure's close/shallow/deep storyboard. Single 30 dBm / 7 dBi chain.
	cases := []struct {
		name string
		path em.Path
	}{
		{"(a) close in air", em.Path{AirDistance: 1}},
		{"(b) shallow tissue", em.Path{AirDistance: 0.5, Layers: []em.Layer{{Medium: em.Muscle, Thickness: 0.05}}}},
		{"(c) deep tissue", em.Path{AirDistance: 0.5, Layers: []em.Layer{{Medium: em.Muscle, Thickness: 0.13}}}},
	}
	txAmp := link.ChainAmplitude() * 2.2387 // 7 dBi antenna amplitude gain
	rect := model.Rectifier()
	var angles []float64
	for _, c := range cases {
		amp := txAmp * c.path.Amplitude(915e6)
		rxPower := amp * amp * math.Pow(10, model.GainDBi/10)
		v := model.InputVoltage(rxPower)
		w := circuit.ConductionAngle(v, model.ThresholdVoltage)
		vdc := rect.SteadyStateVoltage(v)
		angles = append(angles, w)
		res.AddRow(
			engine.Str(c.name),
			engine.Number("%.3f", v),
			engine.Number("%.3f", w),
			engine.Number("%.3f", vdc),
		)
	}
	if len(angles) == 3 {
		res.AddNote("conduction angle ordering a > b > c = %t; deep-tissue angle = %v (paper: zero)",
			angles[0] > angles[1] && angles[1] > angles[2], angles[2])
	}
	_ = cfg
	return res, nil
}
