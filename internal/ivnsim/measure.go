package ivnsim

import (
	"fmt"
	"math"

	"ivn/internal/baseline"
	"ivn/internal/core"
	"ivn/internal/engine"
	"ivn/internal/gen2"
	"ivn/internal/radio"
	"ivn/internal/reader"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

// Measurement parameters shared by the experiments.
const (
	// envelopeScanSamples resolves the 1 s CIB envelope period; beat
	// features at ≤200 Hz offsets span milliseconds, so 8192 points
	// over-resolve them comfortably.
	envelopeScanSamples = 8192
	// envelopeScanCoarse is the coarse stage of the coarse-to-fine peak
	// scan: 2048 points over the 1 s period is still ≥10× the beat
	// bandwidth of a flatness-constrained plan, so the fine-grid argmax
	// always falls inside the refined neighborhoods and the result equals
	// the full envelopeScanSamples scan.
	envelopeScanCoarse = 2048
	// scanDuration is one CIB period (the paper captures 2 s, i.e. two
	// periods of the same deterministic envelope).
	scanDuration = 1.0
)

// DownlinkCoeffs evaluates each downlink channel at freq.
func DownlinkCoeffs(p *scenario.Placement, freq float64) []complex128 {
	out := make([]complex128, len(p.Downlink))
	for i, c := range p.Downlink {
		out[i] = c.Coefficient(freq)
	}
	return out
}

// GainSample is one trial's peak received powers (isotropic watts at the
// sensor position) under each transmission scheme.
type GainSample struct {
	// CIB is the coherently-incoherent beamformer's envelope peak.
	CIB float64
	// Single is one antenna of the same array (the paper's denominator).
	Single float64
	// Blind is the N-antenna same-frequency baseline.
	Blind float64
	// MRT is oracle maximum-ratio transmission (perfect channel
	// knowledge) — the unreachable coherent upper bound.
	MRT float64
}

// chainAmplitude is each transmit chain's emitted amplitude: the default
// PA driven to its 30 dBm (1 W) operating point.
func chainAmplitude() float64 {
	pa := radio.DefaultPA()
	return pa.Amplify(pa.OperatingDrive())
}

// MeasureGains realizes one placement of sc with n antennas and measures
// the four schemes against identical channels.
func MeasureGains(sc scenario.Scenario, n int, r *rng.Rand) (GainSample, error) {
	p, err := sc.Realize(n, r)
	if err != nil {
		return GainSample{}, err
	}
	return measureGainsAt(p, n, r)
}

func measureGainsAt(p *scenario.Placement, n int, r *rng.Rand) (GainSample, error) {
	g := scenario.DefaultGeometry()
	chans := DownlinkCoeffs(p, g.CIBFreq)
	amp := chainAmplitude()

	var out GainSample

	// CIB: offset carriers with fresh random PLL phases.
	cfg := core.DefaultConfig()
	cfg.Antennas = n
	bf, err := core.New(cfg, r.Split("cib"))
	if err != nil {
		return out, err
	}
	out.CIB, err = baseline.PeakReceivedPowerRefined(bf.Carriers(), chans, scanDuration, envelopeScanCoarse, envelopeScanSamples)
	if err != nil {
		return out, err
	}

	// Single antenna: chain 0 alone.
	single := baseline.SingleAntenna(g.CIBFreq, amp)
	out.Single, err = baseline.PeakReceivedPower(single, chans[:1], scanDuration, 1)
	if err != nil {
		return out, err
	}

	// Blind same-frequency array.
	blind, err := baseline.BlindArray(n, g.CIBFreq, amp, r.Split("blind"))
	if err != nil {
		return out, err
	}
	out.Blind, err = baseline.PeakReceivedPower(blind, chans, scanDuration, 1)
	if err != nil {
		return out, err
	}

	// Oracle MRT.
	mrt, err := baseline.OracleMRT(g.CIBFreq, amp, chans)
	if err != nil {
		return out, err
	}
	out.MRT, err = baseline.PeakReceivedPower(mrt, chans, scanDuration, 1)
	if err != nil {
		return out, err
	}
	return out, nil
}

// RunGainTrials measures trials independent placements on the engine's
// bounded scheduler and returns the samples in trial order (deterministic
// regardless of scheduling).
func RunGainTrials(sc scenario.Scenario, n, trials int, seed uint64) ([]GainSample, error) {
	return engine.Trials(seed, "gain-trial", trials, func(_ int, r *rng.Rand) (GainSample, error) {
		return MeasureGains(sc, n, r)
	})
}


// CommTrial is one end-to-end communication attempt: power-up via CIB,
// then RN16 decode via the out-of-band reader.
type CommTrial struct {
	// PeakPower is the CIB envelope peak at the sensor (isotropic watts).
	PeakPower float64
	// Powered reports whether the tag reached its rail.
	Powered bool
	// Decoded reports whether the reader recovered the RN16.
	Decoded bool
	// Correlation is the preamble correlation of the waveform decode (0
	// when the budget path was used or decoding failed early).
	Correlation float64
}

// CommOptions tunes a communication trial.
type CommOptions struct {
	// Waveform switches from the fast link-budget uplink check to full
	// waveform synthesis and FM0 correlation decoding.
	Waveform bool
}

// RunCommTrial realizes a placement and attempts a full power-up +
// inventory exchange with the given tag model.
func RunCommTrial(sc scenario.Scenario, n int, model tag.Model, opts CommOptions, r *rng.Rand) (CommTrial, error) {
	p, err := sc.Realize(n, r)
	if err != nil {
		return CommTrial{}, err
	}
	return runCommAt(p, n, model, opts, r)
}

func runCommAt(p *scenario.Placement, n int, model tag.Model, opts CommOptions, r *rng.Rand) (CommTrial, error) {
	g := scenario.DefaultGeometry()
	var res CommTrial

	// Downlink power delivery.
	chans := DownlinkCoeffs(p, g.CIBFreq)
	cfg := core.DefaultConfig()
	cfg.Antennas = n
	bf, err := core.New(cfg, r.Split("cib"))
	if err != nil {
		return res, err
	}
	res.PeakPower, err = baseline.PeakReceivedPowerRefined(bf.Carriers(), chans, scanDuration, envelopeScanCoarse, envelopeScanSamples)
	if err != nil {
		return res, err
	}

	tg, err := tag.New(model, []byte{0xE2, 0x00, 0x12, 0x34}, r.Split("tag"))
	if err != nil {
		return res, err
	}
	tg.UpdatePower(res.PeakPower)
	res.Powered = tg.Powered()
	if !res.Powered {
		return res, nil
	}

	// Inventory: the synchronized Query arrives intact by construction
	// (the flatness constraint is enforced at TransmitCommand); drive the
	// state machine to an RN16 reply.
	query := &gen2.Query{Q: 0, Session: gen2.S0}
	if _, err := bf.TransmitCommand(query, true); err != nil {
		return res, fmt.Errorf("ivnsim: downlink: %w", err)
	}
	reply := tg.HandleCommand(query)
	if reply.Kind != gen2.ReplyRN16 {
		return res, nil
	}

	// Uplink through the out-of-band reader; subject motion dephases the
	// averaged periods.
	rd := reader.New()
	rd.PhaseDriftPerPeriod = p.UplinkPhaseDriftPerPeriod
	down := p.ReaderDown.Coefficient(rd.TxFreq)
	up := p.ReaderUp.Coefficient(rd.TxFreq)
	// The tag's antenna gain applies twice: receiving the reader carrier
	// and re-radiating the modulated reflection.
	tagG := model.AntennaAmplitudeGain()
	link := reader.RoundTripGain(rd.TxAmplitude, down, up) * complex(tagG*tagG, 0)
	leak := p.CIBLeakPerWatt * float64(n) * chainAmplitude() * chainAmplitude()
	jam := []radio.ToneAt{{Freq: g.CIBFreq, Power: leak}}

	if opts.Waveform {
		bs, err := tg.BackscatterWaveform(reply, rd.SamplesPerHalfBit)
		if err != nil {
			return res, err
		}
		dr, err := rd.DecodeUplink(bs, link, jam, len(reply.Bits), r.Split("uplink"))
		if err == nil && dr.Bits.Equal(reply.Bits) {
			res.Decoded = true
			res.Correlation = dr.Correlation
		}
		return res, nil
	}
	modAmp := reader.ModulationAmplitude(model.BackscatterGain, model.BackscatterDepth)
	res.Decoded = rd.DecodableRN16(link, modAmp, jam)
	return res, nil
}

// MaxOperatingDistance finds the largest distance at which communication
// succeeds, via bisection over mk(distance) scenarios. Success at a
// distance means at least successNeeded of trialsPerPoint trials complete
// the power-up + decode exchange. Returns 0 when even the minimum
// distance fails.
func MaxOperatingDistance(mk func(d float64) scenario.Scenario, n int, model tag.Model, lo, hi float64, trialsPerPoint, successNeeded int, seed uint64) (float64, error) {
	if lo <= 0 || hi <= lo {
		return 0, fmt.Errorf("ivnsim: bad search interval [%v, %v]", lo, hi)
	}
	if trialsPerPoint < 1 || successNeeded < 1 || successNeeded > trialsPerPoint {
		return 0, fmt.Errorf("ivnsim: bad success spec %d/%d", successNeeded, trialsPerPoint)
	}
	parent := rng.New(seed)
	ok := func(d float64) (bool, error) {
		// Trials at one distance are independent; run them on the worker
		// pool. SplitIndexed derives each child stream purely from the
		// parent state + label + index, so concurrent derivation is safe
		// and the per-trial outcomes are identical at any GOMAXPROCS.
		label := fmt.Sprintf("range-%.6g", d)
		good := make([]bool, trialsPerPoint)
		err := engine.ForEach(trialsPerPoint, func(i int) error {
			r := parent.SplitIndexed(label, i)
			tr, err := RunCommTrial(mk(d), n, model, CommOptions{}, r)
			if err != nil {
				return err
			}
			good[i] = tr.Powered && tr.Decoded
			return nil
		})
		if err != nil {
			return false, err
		}
		succ := 0
		for _, g := range good {
			if g {
				succ++
			}
		}
		return succ >= successNeeded, nil
	}
	okLo, err := ok(lo)
	if err != nil {
		return 0, err
	}
	if !okLo {
		return 0, nil
	}
	if okHi, err := ok(hi); err != nil {
		return 0, err
	} else if okHi {
		return hi, nil
	}
	for i := 0; i < 24 && hi-lo > hi*1e-3; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection suits dB-linear links
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
