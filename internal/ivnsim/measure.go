package ivnsim

import (
	"context"
	"fmt"
	"math"

	"ivn/internal/baseline"
	"ivn/internal/core"
	"ivn/internal/engine"
	"ivn/internal/gen2"
	"ivn/internal/link"
	"ivn/internal/reader"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/session"
	"ivn/internal/tag"
)

// GainSample is one trial's peak received powers (isotropic watts at the
// sensor position) under each transmission scheme.
type GainSample struct {
	// CIB is the coherently-incoherent beamformer's envelope peak.
	CIB float64
	// Single is one antenna of the same array (the paper's denominator).
	Single float64
	// Blind is the N-antenna same-frequency baseline.
	Blind float64
	// MRT is oracle maximum-ratio transmission (perfect channel
	// knowledge) — the unreachable coherent upper bound.
	MRT float64
}

// MeasureGains realizes one placement of sc with n antennas and measures
// the four schemes against identical channels.
func MeasureGains(sc scenario.Scenario, n int, r *rng.Rand) (GainSample, error) {
	p, err := sc.Realize(n, r)
	if err != nil {
		return GainSample{}, err
	}
	return measureGainsAt(p, n, nil, r)
}

func measureGainsAt(p *scenario.Placement, n int, tr *session.Trace, r *rng.Rand) (GainSample, error) {
	g := p.Geometry()
	chans := link.DownlinkCoeffs(p, g.CIBFreq)
	amp := link.ChainAmplitude()

	var out GainSample

	// CIB: offset carriers with fresh random PLL phases.
	cfg := core.DefaultConfig()
	cfg.Antennas = n
	cfg.CenterFreq = g.CIBFreq
	bf, err := core.New(cfg, r.Split("cib"))
	if err != nil {
		return out, err
	}
	out.CIB, err = link.PeakDownlink(bf, chans)
	if err != nil {
		return out, err
	}
	if tr != nil {
		// Gain trials realize the CIB downlink without a full Link (no
		// reader leg); report it with the same event the link layer emits.
		tr.Emit(session.Event{Kind: session.EvLinkRealized, Value: 10*math.Log10(out.CIB) + 30})
	}

	// Single antenna: chain 0 alone.
	single := baseline.SingleAntenna(g.CIBFreq, amp)
	out.Single, err = baseline.PeakReceivedPower(single, chans[:1], link.ScanDuration, 1)
	if err != nil {
		return out, err
	}

	// Blind same-frequency array.
	blind, err := baseline.BlindArray(n, g.CIBFreq, amp, r.Split("blind"))
	if err != nil {
		return out, err
	}
	out.Blind, err = baseline.PeakReceivedPower(blind, chans, link.ScanDuration, 1)
	if err != nil {
		return out, err
	}

	// Oracle MRT.
	mrt, err := baseline.OracleMRT(g.CIBFreq, amp, chans)
	if err != nil {
		return out, err
	}
	out.MRT, err = baseline.PeakReceivedPower(mrt, chans, link.ScanDuration, 1)
	if err != nil {
		return out, err
	}
	return out, nil
}

// RunGainTrials measures trials independent placements on the engine's
// bounded scheduler and returns the samples in trial order (deterministic
// regardless of scheduling).
func RunGainTrials(sc scenario.Scenario, n, trials int, seed uint64) ([]GainSample, error) {
	return RunGainTrialsTraced(sc, n, trials, seed, nil, "")
}

// RunGainTrialsTraced is RunGainTrials with per-trial trace spans: trial i
// records under "<prefix>/NNNN". A nil log (the untraced form) draws the
// same streams and returns identical samples. Trials run on the batched
// scratch path: per-worker gain kits absorb the per-trial allocations.
func RunGainTrialsTraced(sc scenario.Scenario, n, trials int, seed uint64, tlog *session.TraceLog, prefix string) ([]GainSample, error) {
	return RunGainTrialsCtx(context.Background(), engine.Limits{}, sc, n, trials, seed, tlog, prefix)
}

// RunGainTrialsCtx is RunGainTrialsTraced under a cancellation context
// and per-run scheduler limits; samples are identical to the unlimited
// form whenever the run completes.
func RunGainTrialsCtx(ctx context.Context, lim engine.Limits, sc scenario.Scenario, n, trials int, seed uint64, tlog *session.TraceLog, prefix string) ([]GainSample, error) {
	s := engine.NewScratches(newGainKit)
	return engine.TrialsScratchCtx(ctx, lim, seed, "gain-trial", trials, s, func(i int, scratch any, r *rng.Rand) (GainSample, error) {
		var tr *session.Trace
		if tlog != nil {
			var commit func()
			tr, commit = tlog.Span(fmt.Sprintf("%s/%04d", prefix, i))
			defer commit()
		}
		return measureGainsScratch(scratch.(*gainKit), sc, n, tr, r)
	})
}

// CommTrial is one end-to-end communication attempt: power-up via CIB,
// then RN16 decode via the out-of-band reader.
type CommTrial struct {
	// PeakPower is the CIB envelope peak at the sensor (isotropic watts).
	PeakPower float64
	// Powered reports whether the tag reached its rail.
	Powered bool
	// Decoded reports whether the reader recovered the RN16.
	Decoded bool
	// Correlation is the preamble correlation of the waveform decode (0
	// when the budget path was used or decoding failed early).
	Correlation float64
}

// CommOptions tunes a communication trial.
type CommOptions struct {
	// Waveform switches from the fast link-budget uplink check to full
	// waveform synthesis and FM0 correlation decoding.
	Waveform bool
	// Trace, when non-nil, observes the trial as a typed event stream on
	// the simulated air clock. Nil is free.
	Trace *session.Trace
	// DecodeFault corrupts waveform captures (reader seam of the fault
	// layer); with Retries it exercises the bounded capture-retry path.
	// Leave both zero for the historical single-capture decode (the
	// retry path draws its noise from a different deterministic stream).
	DecodeFault reader.DecodeFault
	// Retries is the extra capture budget when DecodeFault fires.
	Retries int
}

// faultAware reports whether the trial must route decodes through the
// capture-retry path.
func (o CommOptions) faultAware() bool { return o.DecodeFault != nil || o.Retries > 0 }

// defaultEPC is the EPC programmed into every simulated tag. Shared
// safely across trials: gen2.NewTagLogic copies the bytes it is given.
var defaultEPC = []byte{0xE2, 0x00, 0x12, 0x34}

// RunCommTrial realizes a placement and attempts a full power-up +
// inventory exchange with the given tag model.
func RunCommTrial(sc scenario.Scenario, n int, model tag.Model, opts CommOptions, r *rng.Rand) (CommTrial, error) {
	p, err := sc.Realize(n, r)
	if err != nil {
		return CommTrial{}, err
	}
	return runCommAt(p, n, model, opts, r)
}

func runCommAt(p *scenario.Placement, n int, model tag.Model, opts CommOptions, r *rng.Rand) (CommTrial, error) {
	// Downlink power delivery at the placement's own geometry.
	lk, err := link.ForTrial(p, n, opts.Trace, r)
	if err != nil {
		return CommTrial{}, err
	}
	return commExchangeAt(lk, r.Split("tag"), model, opts, r)
}

// commExchangeAt runs the power-up + inventory exchange over an already
// realized link. tagRand seeds the tag's RN16 stream; it must stay valid
// for the whole exchange (gen2.TagLogic keeps the pointer and draws
// later), which is why the scratch path hands in a persistent kit field.
func commExchangeAt(lk *link.Link, tagRand *rng.Rand, model tag.Model, opts CommOptions, r *rng.Rand) (CommTrial, error) {
	var res CommTrial
	res.PeakPower = lk.PeakPower()

	tg, err := tag.New(model, defaultEPC, tagRand)
	if err != nil {
		return res, err
	}
	x := session.Exchange{Link: lk, Trace: opts.Trace}
	res.Powered = x.PowerUp(tg, res.PeakPower)
	if !res.Powered {
		return res, nil
	}

	// Inventory: the synchronized Query arrives intact by construction
	// (the flatness constraint is enforced at TransmitCommand); drive the
	// state machine to an RN16 reply.
	reply, err := x.Query(tg, &gen2.Query{Q: 0, Session: gen2.S0})
	if err != nil {
		return res, fmt.Errorf("ivnsim: downlink: %w", err)
	}
	if reply.Kind != gen2.ReplyRN16 {
		return res, nil
	}

	// Uplink through the out-of-band reader; subject motion dephases the
	// averaged periods.
	if opts.Waveform {
		var dec session.Decode
		var ok bool
		if opts.faultAware() {
			dec, ok, err = lk.DecodeWithRetry(tg, reply, 0, opts.Retries, opts.DecodeFault, "uplink", r)
		} else {
			dec, ok, err = lk.Decode(tg, reply, "uplink", r)
		}
		if err != nil {
			return res, err
		}
		if ok {
			res.Decoded = true
			res.Correlation = dec.Correlation
		}
		return res, nil
	}
	res.Decoded = lk.DecodableRN16(model)
	return res, nil
}

// MaxOperatingDistance finds the largest distance at which communication
// succeeds, via bisection over mk(distance) scenarios. Success at a
// distance means at least successNeeded of trialsPerPoint trials complete
// the power-up + decode exchange. Returns 0 when even the minimum
// distance fails.
func MaxOperatingDistance(mk func(d float64) scenario.Scenario, n int, model tag.Model, lo, hi float64, trialsPerPoint, successNeeded int, seed uint64) (float64, error) {
	return MaxOperatingDistanceCtx(context.Background(), engine.Limits{}, mk, n, model, lo, hi, trialsPerPoint, successNeeded, seed)
}

// MaxOperatingDistanceCtx is MaxOperatingDistance under a cancellation
// context and per-run scheduler limits: each probe's trial loop checks
// ctx between trials, so a cancelled bisection returns promptly.
func MaxOperatingDistanceCtx(ctx context.Context, lim engine.Limits, mk func(d float64) scenario.Scenario, n int, model tag.Model, lo, hi float64, trialsPerPoint, successNeeded int, seed uint64) (float64, error) {
	if lo <= 0 || hi <= lo {
		return 0, fmt.Errorf("ivnsim: bad search interval [%v, %v]", lo, hi)
	}
	if trialsPerPoint < 1 || successNeeded < 1 || successNeeded > trialsPerPoint {
		return 0, fmt.Errorf("ivnsim: bad success spec %d/%d", successNeeded, trialsPerPoint)
	}
	parent := rng.New(seed)
	// Per-worker comm kits and the outcome buffer persist across the whole
	// bisection — every probe reuses them.
	scratches := engine.NewScratches(newCommKit)
	good := make([]bool, trialsPerPoint)
	ok := func(d float64) (bool, error) {
		// Trials at one distance are independent; run them on the worker
		// pool. SplitIndexedInto derives each child stream purely from the
		// parent state + label + index, so concurrent derivation is safe
		// and the per-trial outcomes are identical at any GOMAXPROCS. The
		// scenario is trial-invariant: build it once per probe and share it
		// read-only across the parallel trials.
		sc := mk(d)
		label := fmt.Sprintf("range-%.6g", d)
		err := engine.ForEachScratchCtx(ctx, lim, trialsPerPoint, scratches, func(i int, scratch any, r *rng.Rand) error {
			parent.SplitIndexedInto(r, label, i)
			tr, err := runCommScratch(scratch.(*commKit), sc, n, model, CommOptions{}, r)
			if err != nil {
				return err
			}
			good[i] = tr.Powered && tr.Decoded
			return nil
		})
		if err != nil {
			return false, err
		}
		succ := 0
		for _, g := range good {
			if g {
				succ++
			}
		}
		return succ >= successNeeded, nil
	}
	okLo, err := ok(lo)
	if err != nil {
		return 0, err
	}
	if !okLo {
		return 0, nil
	}
	if okHi, err := ok(hi); err != nil {
		return 0, err
	} else if okHi {
		return hi, nil
	}
	for i := 0; i < 24 && hi-lo > hi*1e-3; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection suits dB-linear links
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
