package ivnsim

import (
	"strconv"
	"strings"
	"testing"
)

// Shape tests: assert the qualitative structure the paper reports for each
// figure, on quick-mode runs. These are the regression net that keeps the
// reproduction honest as models evolve.

func cellFloat(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(tab.Rows[row][col]), 64)
	if err != nil {
		t.Fatalf("row %d col %d %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestFig6Shape(t *testing.T) {
	tab, err := mustRun(t, "fig6", Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// CDFs must be monotone, and the best set must stochastically dominate
	// the worst (its CDF sits at or below the worst's at every gain level).
	prevBest, prevWorst := -1.0, -1.0
	for row := range tab.Rows {
		best := cellFloat(t, tab, row, 1)
		worst := cellFloat(t, tab, row, 2)
		if best < prevBest-1e-9 || worst < prevWorst-1e-9 {
			t.Fatalf("CDF not monotone at row %d", row)
		}
		if best > worst+1e-9 {
			t.Fatalf("best-set CDF above worst at row %d (%v > %v): dominance violated", row, best, worst)
		}
		prevBest, prevWorst = best, worst
	}
	// Both reach 1 at the max gain 25.
	last := len(tab.Rows) - 1
	if cellFloat(t, tab, last, 1) != 1 || cellFloat(t, tab, last, 2) != 1 {
		t.Fatal("CDFs do not reach 1 at N²")
	}
}

func TestFig10aShape(t *testing.T) {
	tab, err := mustRun(t, "fig10a", Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Gain flat with depth (all medians within 3x of each other) while the
	// absolute peak falls monotonically overall (first vs last ≥ 8 dB).
	var lo, hi float64
	for row := range tab.Rows {
		m := cellFloat(t, tab, row, 2)
		if row == 0 {
			lo, hi = m, m
		}
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi/lo > 3 {
		t.Fatalf("gain varies %vx across depth; paper shows flat", hi/lo)
	}
	first := cellFloat(t, tab, 0, 4)
	last := cellFloat(t, tab, len(tab.Rows)-1, 4)
	if first-last < 8 {
		t.Fatalf("absolute peak fell only %.1f dB over 20 cm of water", first-last)
	}
}

func TestFig11Shape(t *testing.T) {
	tab, err := mustRun(t, "fig11", Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("%d media rows, want 7", len(tab.Rows))
	}
	for row := range tab.Rows {
		cib := cellFloat(t, tab, row, 2)   // CIB median
		blind := cellFloat(t, tab, row, 4) // baseline median
		if cib < 20 {
			t.Fatalf("row %d: CIB median %v implausibly low", row, cib)
		}
		if blind < 2 || blind > 30 {
			t.Fatalf("row %d: baseline median %v outside plausible range", row, blind)
		}
		if cib < 2*blind {
			t.Fatalf("row %d: CIB %v not well above baseline %v", row, cib, blind)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	tab, err := mustRun(t, "fig12", Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// CDF at ratio 1 must be ≈0 (CIB essentially always wins).
	var at1 float64
	found := false
	prev := -1.0
	for row := range tab.Rows {
		x := cellFloat(t, tab, row, 0)
		c := cellFloat(t, tab, row, 1)
		if c < prev-1e-9 {
			t.Fatalf("ratio CDF not monotone at row %d", row)
		}
		prev = c
		if x == 1 {
			at1, found = c, true
		}
	}
	if !found {
		t.Fatal("no ratio=1 row")
	}
	if at1 > 0.03 {
		t.Fatalf("CIB loses to the baseline in %.1f%% of trials; paper reports <1%%", at1*100)
	}
}

func TestFig13aShape(t *testing.T) {
	tab, err := mustRun(t, "fig13a", Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Range grows with antennas; 8-antenna range is several times the
	// single-antenna range; single-antenna lands near the paper's 5.2 m.
	first := cellFloat(t, tab, 0, 1)
	last := cellFloat(t, tab, len(tab.Rows)-1, 1)
	if first < 3 || first > 9 {
		t.Fatalf("single-antenna range %v m, want ≈5.2", first)
	}
	if last < 3*first {
		t.Fatalf("8-antenna range %v not well above single-antenna %v", last, first)
	}
}

func TestFig13dShape(t *testing.T) {
	tab, err := mustRun(t, "fig13d", Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// The miniature tag must not operate with one antenna and must reach
	// several cm with eight (paper: no op → 11 cm).
	if tab.Rows[0][1] != "no operation" {
		t.Fatalf("miniature tag operated at depth %s with one antenna", tab.Rows[0][1])
	}
	last := tab.Rows[len(tab.Rows)-1][1]
	if last == "no operation" {
		t.Fatal("miniature tag never operated")
	}
	d, err := strconv.ParseFloat(last, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d < 4 || d > 20 {
		t.Fatalf("8-antenna miniature depth %v cm, want ≈10", d)
	}
}

func TestAblationOutOfBandShape(t *testing.T) {
	tab, err := mustRun(t, "ablation-outofband", Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: in-band saturated, cannot decode. Row 1: out-of-band fine.
	if tab.Rows[0][1] != "true" || tab.Rows[0][3] != "false" {
		t.Fatalf("in-band row wrong: %v", tab.Rows[0])
	}
	if tab.Rows[1][1] != "false" || tab.Rows[1][3] != "true" {
		t.Fatalf("out-of-band row wrong: %v", tab.Rows[1])
	}
}

func TestAblationSafetyShape(t *testing.T) {
	tab, err := mustRun(t, "ablation-safety", Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// CIB compliant; CW equivalent not.
	if tab.Rows[0][3] != "true" {
		t.Fatalf("CIB non-compliant: %v", tab.Rows[0])
	}
	if tab.Rows[1][3] != "false" {
		t.Fatalf("CW equivalent compliant: %v", tab.Rows[1])
	}
	cibAvg := cellFloat(t, tab, 0, 1)
	cwAvg := cellFloat(t, tab, 1, 1)
	if cwAvg <= cibAvg {
		t.Fatal("CW average SAR not above CIB's")
	}
}

func TestAblationFreqErrorShape(t *testing.T) {
	tab, err := mustRun(t, "ablation-freqerror", Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Peak stable across error levels; recurrence perfect only at σ=0.
	peak0 := cellFloat(t, tab, 0, 1)
	rec0 := cellFloat(t, tab, 0, 2)
	if rec0 < 0.999 {
		t.Fatalf("zero-error recurrence %v, want 1", rec0)
	}
	for row := 1; row < len(tab.Rows); row++ {
		peak := cellFloat(t, tab, row, 1)
		if peak < 0.9*peak0 || peak > 1.1*peak0 {
			t.Fatalf("row %d: peak %v drifted from %v", row, peak, peak0)
		}
		if rec := cellFloat(t, tab, row, 2); rec > 0.9 {
			t.Fatalf("row %d: recurrence %v survived frequency error", row, rec)
		}
	}
}

func TestAblationHoppingShape(t *testing.T) {
	tab, err := mustRun(t, "ablation-hopping", Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	fixed := cellFloat(t, tab, 0, 2)
	hopped := cellFloat(t, tab, 1, 2)
	if hopped-fixed < 10 {
		t.Fatalf("hop recovered only %.1f dB from the engineered fade", hopped-fixed)
	}
	if tab.Rows[1][1] == "915.0" {
		t.Fatal("hopper stayed in the faded band")
	}
}
