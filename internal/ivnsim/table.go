// Package ivnsim is IVN's experiment layer: it wires scenarios, the CIB
// beamformer, the baselines, the tag models and the out-of-band reader
// into the measurements the paper reports, and expresses each figure or
// table as a declarative spec over the trial engine (internal/engine).
// Every experiment is registered under the paper's figure/table id (see
// Registry), returns a typed engine.Result, and is deterministic for a
// given seed.
package ivnsim

import (
	"fmt"
	"io"

	"ivn/internal/engine"
)

// Table is the legacy string-level view of a result: every cell already
// formatted. Experiments no longer build Tables — they return typed
// engine.Results — but the view remains for tests and consumers that
// assert on rendered cells.
type Table struct {
	// ID is the experiment id (e.g. "fig9").
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the data, already formatted.
	Rows [][]string
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// TableOf flattens a typed result to its string-level view.
func TableOf(r *engine.Result) *Table {
	t := &Table{
		ID:     r.ID,
		Title:  r.Title,
		Header: r.HeaderLabels(),
		Notes:  append([]string(nil), r.Notes...),
	}
	for _, row := range r.TextRows() {
		t.AddRow(row...)
	}
	return t
}

// AddRow appends a row; it pads short rows to the header width. A row
// wider than the header panics: silently truncating it once let a
// renderer migration drop columns unnoticed.
func (t *Table) AddRow(cells ...string) {
	if len(t.Header) > 0 {
		if len(cells) > len(t.Header) {
			panic(fmt.Sprintf("ivnsim: %s: row has %d cells for %d header columns", t.ID, len(cells), len(t.Header)))
		}
		for len(cells) < len(t.Header) {
			cells = append(cells, "")
		}
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a commentary line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// result lifts the string table back into the engine's result model (all
// cells as strings) so both render paths share one implementation.
func (t *Table) result() *engine.Result {
	r := &engine.Result{ID: t.ID, Title: t.Title, Notes: t.Notes}
	for _, h := range t.Header {
		r.Columns = append(r.Columns, engine.Col(h, ""))
	}
	for _, row := range t.Rows {
		cells := make([]engine.Cell, len(row))
		for i, c := range row {
			cells[i] = engine.Str(c)
		}
		r.Rows = append(r.Rows, cells)
	}
	return r
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	return engine.RenderText(t.result(), w)
}

// RenderCSV writes the table as CSV (header + rows; notes as comments).
func (t *Table) RenderCSV(w io.Writer) error {
	return engine.RenderCSV(t.result(), w)
}
