// Package ivnsim is IVN's experiment engine: it wires scenarios, the CIB
// beamformer, the baselines, the tag models and the out-of-band reader
// into the measurements the paper reports, and renders each figure/table
// as rows of text. Every experiment is registered under the paper's
// figure/table id (see Registry) and is deterministic for a given seed.
package ivnsim

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the rows that correspond to a
// figure's series or a table's lines.
type Table struct {
	// ID is the experiment id (e.g. "fig9").
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the data, already formatted.
	Rows [][]string
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a row; it pads or truncates to the header width.
func (t *Table) AddRow(cells ...string) {
	if len(t.Header) > 0 {
		for len(cells) < len(t.Header) {
			cells = append(cells, "")
		}
		cells = cells[:len(t.Header)]
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a commentary line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if len(t.Header) > 0 {
		if err := writeRow(t.Header); err != nil {
			return err
		}
		var sb strings.Builder
		for i, width := range widths {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(strings.Repeat("-", width))
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (header + rows; notes as comments).
func (t *Table) RenderCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if len(t.Header) > 0 {
		if err := writeRow(t.Header); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}
