package ivnsim

import (
	"fmt"

	"ivn/internal/baseline"
	"ivn/internal/core"
	"ivn/internal/engine"
	"ivn/internal/fault"
	"ivn/internal/gen2"
	"ivn/internal/link"
	"ivn/internal/reader"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/session"
	"ivn/internal/tag"
)

// Fault-matrix experiment: multi-sensor inventory under the deterministic
// fault layer, with and without the recovery stack. The paper's in-vivo
// evaluation (§6) lives in exactly this regime — brownouts as the CIB
// envelope peak drifts with subject motion, decode failures at deep-tissue
// SNR, collisions in multi-sensor inventory — so degradation curves and
// the recovery ablation are a committed, regression-checked artifact.

func init() {
	register(Experiment{
		ID:    "faultmatrix",
		Title: "Inventory success vs fault intensity, with and without link-layer recovery",
		Paper: "robustness ablation for the §6 degraded-channel regime (no direct figure)",
		Run:   runFaultMatrix,
	})
}

const (
	// faultTags is the sensor population per trial (the paper's
	// multi-sensor story, §3.7).
	faultTags = 6
	// faultRounds is the per-trial inventory round budget. Kept tight:
	// a stranded tag (EPC lost, inventoried flag flipped) stays lost
	// unless a brownout happens to reset it, and a generous budget would
	// let those rescues mask the no-recovery degradation being measured.
	faultRounds = 5
	// faultAntennas matches the prototype's 8-chain array.
	faultAntennas = 8
)

// FaultMatrixRow is one (scale, recovery) cell of the fault matrix,
// aggregated over trials.
type FaultMatrixRow struct {
	// Scale is the fault-intensity multiple of fault.DefaultConfig.
	Scale float64
	// Recovery reports whether the recovery stack was enabled.
	Recovery bool
	// Trials is the number of independent trials aggregated.
	Trials int
	// Inventoried counts trials that read the full population.
	Inventoried int
	// TagsRead / TagsTotal is the aggregate tag-read fraction.
	TagsRead, TagsTotal int
	// Rounds and Commands are totals across trials.
	Rounds, Commands int
	// ACKRetries and Recovered are the recovery stack's totals.
	ACKRetries, Recovered int
	// Truncated, Corrupted, Brownouts count injected faults observed.
	Truncated, Corrupted, Brownouts int
	// CaptureOK counts trials whose reader-side capture retry decoded;
	// CaptureAttempts is the total attempts spent.
	CaptureOK, CaptureAttempts int
}

// SuccessRate is the aggregate fraction of tags read.
func (r FaultMatrixRow) SuccessRate() float64 {
	if r.TagsTotal == 0 {
		return 0
	}
	return float64(r.TagsRead) / float64(r.TagsTotal)
}

// faultTrialResult is one trial's outcome. Fields are exported because
// journaled runs serialize samples to JSONL (the engine's round-trip
// guard rejects types whose fields cannot survive JSON).
type faultTrialResult struct {
	Read, Total                     int
	Rounds, Commands                int
	ACKRetries, Recovered           int
	Truncated, Corrupted, Brownouts int
	CaptureOK                       bool
	CaptureAttempts                 int
}

// roundChannel composes the injector's link faults with the physics-level
// power state: a tag whose rail is down (envelope peak faded this round)
// is dark regardless of the injector's brownout draw.
type roundChannel struct {
	inj  session.ChannelFault
	dark []bool
}

func (rc *roundChannel) CommandTruncated(cmd int) bool { return rc.inj.CommandTruncated(cmd) }

func (rc *roundChannel) TagPowered(cmd, tagIndex int) bool {
	return !rc.dark[tagIndex] && rc.inj.TagPowered(cmd, tagIndex)
}

func (rc *roundChannel) CorruptUplink(cmd int, bits gen2.Bits) (gen2.Bits, bool) {
	return rc.inj.CorruptUplink(cmd, bits)
}

// runFaultTrial runs one multi-sensor inventory under fault injection.
// The rng stream and injector seed derive identically for both recovery
// variants (the caller excludes `recovery` from the stream label), so the
// ablation is paired: both variants face the same placement, the same PLL
// phases, and the same fault schedule.
func runFaultTrial(scale float64, recovery bool, r *rng.Rand) (faultTrialResult, error) {
	res := faultTrialResult{Total: faultTags}
	p, err := scenario.NewSwine(scenario.Subcutaneous).Realize(faultAntennas, r.Split("placement"))
	if err != nil {
		return res, err
	}
	g := p.Geometry()
	chans := link.DownlinkCoeffs(p, g.CIBFreq)
	ccfg := core.DefaultConfig()
	ccfg.Antennas = faultAntennas
	ccfg.CenterFreq = g.CIBFreq
	bf, err := core.New(ccfg, r.Split("cib"))
	if err != nil {
		return res, err
	}
	inj := fault.NewInjector(fault.DefaultConfig().Scale(scale), r.Split("fault").Uint64())

	model := tag.StandardTag()
	tags := make([]*tag.Tag, faultTags)
	logics := make([]*gen2.TagLogic, faultTags)
	for i := range tags {
		epc := []byte{0xE2, 0x00, byte(i), 0x10}
		tg, err := tag.New(model, epc, r.Split(fmt.Sprintf("tag-%d", i)))
		if err != nil {
			return res, err
		}
		tg.Fault = inj.PowerFault(i)
		tags[i] = tg
		logics[i] = tg.Logic
	}

	ic := session.NewInventoryController(gen2.S0)
	rc := &roundChannel{inj: inj, dark: make([]bool, faultTags)}
	ic.Fault = rc
	if recovery {
		ic.Recovery = session.DefaultRecovery()
	}

	seen := map[string]bool{}
	roundR := r.Split("rounds")
	for round := 0; round < faultRounds && len(seen) < faultTags; round++ {
		// Physics: this round's carrier set after antenna dropout / PLL
		// re-lock faults, then the envelope peak each sensor harvests.
		carriers := bf.Array.PerturbedCarriers(inj.CarrierFault(round))
		peak, err := baseline.PeakReceivedPowerRefined(carriers, chans, link.ScanDuration, link.ScanCoarse, link.ScanSamples)
		if err != nil {
			return res, err
		}
		for i, tg := range tags {
			tg.UpdatePowerAt(round, peak)
			rc.dark[i] = !tg.Powered()
		}
		stats, err := ic.RunRound(logics, roundR.Split(fmt.Sprintf("round-%d", round)))
		if err != nil {
			return res, err
		}
		res.Rounds++
		res.Commands += stats.Commands
		res.ACKRetries += stats.ACKRetries
		res.Recovered += stats.Recovered
		res.Truncated += stats.Truncated
		res.Corrupted += stats.Corrupted
		res.Brownouts += stats.Brownouts
		for _, epc := range stats.EPCs {
			seen[string(epc)] = true
		}
	}
	res.Read = len(seen)

	// Reader-side capture retry sub-measurement: one RN16 uplink decode
	// through the out-of-band reader with the injector corrupting captures
	// and the retry budget (recovery only) re-capturing.
	probe, err := tag.New(model, []byte{0xE2, 0x00, 0xFF, 0x10}, r.Split("probe"))
	if err != nil {
		return res, err
	}
	probe.UpdatePower(probe.Model.MinPeakPower() * 2)
	reply := probe.HandleCommand(&gen2.Query{Q: 0})
	rd := reader.New()
	rd.PhaseDriftPerPeriod = p.UplinkPhaseDriftPerPeriod
	bs, err := probe.BackscatterWaveform(reply, rd.SamplesPerHalfBit)
	if err != nil {
		return res, err
	}
	down := p.ReaderDown.Coefficient(rd.TxFreq)
	up := p.ReaderUp.Coefficient(rd.TxFreq)
	tagG := model.AntennaAmplitudeGain()
	link := reader.RoundTripGain(rd.TxAmplitude, down, up) * complex(tagG*tagG, 0)
	retries := 0
	if recovery {
		retries = 2
	}
	rr, err := rd.DecodeUplinkWithRetry(0, retries, inj, bs, link, nil, len(reply.Bits), r.Split("capture"))
	if err != nil {
		return res, err
	}
	res.CaptureOK = rr.Succeeded()
	res.CaptureAttempts = len(rr.Attempts)
	return res, nil
}

// FaultMatrixSummary computes the fault matrix: for each intensity scale,
// a paired pair of rows (recovery on / off) aggregated over cfg trials.
// Identical configs produce identical summaries at any GOMAXPROCS.
func FaultMatrixSummary(cfg Config) ([]FaultMatrixRow, error) {
	scales := cfg.FaultScales
	if len(scales) == 0 {
		scales = fault.DefaultScales()
	}
	trials := cfg.trials(16, 4)
	var rows []FaultMatrixRow
	for _, scale := range scales {
		for _, recovery := range []bool{true, false} {
			row := FaultMatrixRow{Scale: scale, Recovery: recovery, Trials: trials}
			// The stream label excludes `recovery`, pairing the variants:
			// same placements, same fault schedules, different protocol.
			label := fmt.Sprintf("fault-%g", scale)
			rec := recovery
			results, err := engine.TrialsCtx(cfg.Context(), cfg.Limits, cfg.Seed, label, trials, func(_ int, r *rng.Rand) (faultTrialResult, error) {
				return runFaultTrial(scale, rec, r)
			})
			if err != nil {
				return nil, err
			}
			for _, tr := range results {
				if tr.Read == tr.Total {
					row.Inventoried++
				}
				row.TagsRead += tr.Read
				row.TagsTotal += tr.Total
				row.Rounds += tr.Rounds
				row.Commands += tr.Commands
				row.ACKRetries += tr.ACKRetries
				row.Recovered += tr.Recovered
				row.Truncated += tr.Truncated
				row.Corrupted += tr.Corrupted
				row.Brownouts += tr.Brownouts
				if tr.CaptureOK {
					row.CaptureOK++
				}
				row.CaptureAttempts += tr.CaptureAttempts
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runFaultMatrix(cfg Config) (*engine.Result, error) {
	rows, err := FaultMatrixSummary(cfg)
	if err != nil {
		return nil, err
	}
	res := engine.NewResult("faultmatrix", "Multi-sensor inventory under injected faults (subcutaneous swine, 8-antenna CIB)",
		engine.Col("scale", ""), engine.Col("recovery", ""), engine.Col("inventoried", ""), engine.Col("tags read", ""),
		engine.Col("avg rounds", ""), engine.Col("avg cmds", ""), engine.Col("reACK/rec", ""), engine.Col("faults t/c/b", ""), engine.Col("capture", ""))
	for _, row := range rows {
		rec := "off"
		if row.Recovery {
			rec = "on"
		}
		res.AddRow(
			engine.Number("%g", row.Scale),
			engine.Str(rec),
			engine.Counts(row.Inventoried, row.Trials),
			engine.Tuple("%d/%d (%.1f%%)", float64(row.TagsRead), float64(row.TagsTotal), 100*row.SuccessRate()),
			engine.Number("%.1f", float64(row.Rounds)/float64(row.Trials)),
			engine.Number("%.0f", float64(row.Commands)/float64(row.Trials)),
			engine.Counts(row.ACKRetries, row.Recovered),
			engine.Counts(row.Truncated, row.Corrupted, row.Brownouts),
			engine.Tuple("%d/%d (%d att)", float64(row.CaptureOK), float64(row.Trials), float64(row.CaptureAttempts)),
		)
	}
	res.AddNote("scale multiplies every rate of the default fault config (0 = fault-free baseline)")
	res.AddNote("paired ablation: recovery on/off variants share placements, PLL phases and fault schedules")
	res.AddNote("faults t/c/b = command truncations / corrupted uplinks / observed brownouts")
	res.AddNote("capture = reader-side decode-with-retry sub-measurement (budget 2 with recovery, 0 without)")
	return res, nil
}
