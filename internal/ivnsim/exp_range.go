package ivnsim

import (
	"fmt"

	"ivn/internal/em"
	"ivn/internal/engine"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

// Range/depth experiments: Fig. 13(a)-(d).

func init() {
	register(Experiment{
		ID:    "fig13a",
		Title: "Operating range vs antennas: standard tag in air",
		Paper: "≈5.2 m at 1 antenna up to ≈38 m at 8 (7.6x)",
		Run: func(cfg Config) (*engine.Result, error) {
			return runRangeSweep(cfg, "fig13a", tag.StandardTag(), false)
		},
	})
	register(Experiment{
		ID:    "fig13b",
		Title: "Operating range vs antennas: miniature tag in air",
		Paper: "≈0.5 m at 1 antenna up to ≈4 m at 8",
		Run: func(cfg Config) (*engine.Result, error) {
			return runRangeSweep(cfg, "fig13b", tag.MiniatureTag(), false)
		},
	})
	register(Experiment{
		ID:    "fig13c",
		Title: "Operating depth vs antennas: standard tag in water",
		Paper: "no operation at 1 antenna; ≈23 cm at 8 antennas; logarithmic in N",
		Run: func(cfg Config) (*engine.Result, error) {
			return runRangeSweep(cfg, "fig13c", tag.StandardTag(), true)
		},
	})
	register(Experiment{
		ID:    "fig13d",
		Title: "Operating depth vs antennas: miniature tag in water",
		Paper: "no operation at 1 antenna; ≈11 cm at 8 antennas",
		Run: func(cfg Config) (*engine.Result, error) {
			return runRangeSweep(cfg, "fig13d", tag.MiniatureTag(), true)
		},
	})
}

func runRangeSweep(cfg Config, id string, model tag.Model, water bool) (*engine.Result, error) {
	col := engine.Col("range", "m")
	if water {
		col = engine.Col("depth", "cm")
	}
	res := engine.NewResult(id,
		fmt.Sprintf("Maximum operating %s vs antennas, %s tag", col.Label(), model.Name),
		engine.Col("antennas", ""), col)
	trialsPerPoint := 5
	successNeeded := 3
	if cfg.Quick {
		trialsPerPoint, successNeeded = 3, 2
	}
	var mk func(d float64) scenario.Scenario
	lo, hi := 0.2, 120.0
	if water {
		// Fig. 13(c)/(d) setup: antennas 90 cm from the tank edge; the tag
		// sits in a fixed test tube, so its orientation is pinned (the
		// orientation sweep is Fig. 10b's separate experiment).
		mk = func(d float64) scenario.Scenario {
			sc := scenario.NewTank(0.9, em.Water, d)
			sc.FixedOrientation = 0
			return sc
		}
		lo, hi = 0.005, 0.6
	} else {
		mk = func(d float64) scenario.Scenario { return scenario.NewAir(d) }
	}
	antennaCounts := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if cfg.Quick {
		antennaCounts = []int{1, 2, 4, 8}
	}
	// The inner trial loop already runs on the engine scheduler
	// (MaxOperatingDistance bisects sequentially, parallelizing each
	// probe's trials), so the sweep over antenna counts stays a plain loop.
	var first, last float64
	for _, n := range antennaCounts {
		d, err := MaxOperatingDistanceCtx(cfg.Context(), cfg.Limits, mk, n, model, lo, hi, trialsPerPoint, successNeeded, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		if n == antennaCounts[0] {
			first = d
		}
		last = d
		val := engine.Number("%.1f", d)
		if water {
			val = engine.Number("%.1f", d*100)
		}
		if d == 0 {
			val = engine.Str("no operation")
		}
		res.AddRow(engine.Int(n), val)
	}
	switch {
	case water && first > 0:
		res.AddNote("depth grows roughly logarithmically with N (exponential loss in water, paper §6.1.2)")
	case water:
		res.AddNote("single antenna cannot operate at all in this setup (matches the paper's in-water result)")
	case first > 0:
		res.AddNote("range gain %d antennas vs 1: %.1fx (paper: ≈7.6x in air)", antennaCounts[len(antennaCounts)-1], last/first)
	default:
		res.AddNote("no operation even at the minimum distance")
	}
	_ = last
	res.AddNote("success = tag powers up AND the out-of-band reader decodes its RN16 in >= %d/%d placements",
		successNeeded, trialsPerPoint)
	return res, nil
}
