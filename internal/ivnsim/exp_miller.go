package ivnsim

import (
	"fmt"
	"math"

	"ivn/internal/engine"
	"ivn/internal/gen2"
	"ivn/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "ablation-miller",
		Title: "Uplink encoding robustness: FM0 vs Miller-2/4/8 payload BER vs SNR",
		Paper: "Gen2's M field trades rate for robustness; each Miller bit spreads over M subcarrier cycles",
		Run:   runAblationMiller,
	})
}

// runAblationMiller measures raw payload bit-error rate for each uplink
// encoding at matched per-sample SNR and alignment. A Miller-M bit spans
// M subcarrier cycles (M× the on-air time of an FM0 bit at the same link
// frequency), so its demodulator integrates M× more samples per decision:
// the classic rate-for-robustness trade, isolated from preamble detection.
func runAblationMiller(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("ablation-miller", "Payload bit-error rate by encoding (aligned capture, known timing)",
		engine.Col("per-sample SNR", "dB"), engine.Col("FM0", ""), engine.Col("Miller-2", ""), engine.Col("Miller-4", ""), engine.Col("Miller-8", ""))
	trials := cfg.trials(60, 15)
	const sp = 8 // FM0 samples per half-bit; Miller uses 2·sp per cycle
	const nbits = 16

	type enc struct {
		name   string
		miller int
	}
	encodings := []enc{{"fm0", 0}, {"m2", 2}, {"m4", 4}, {"m8", 8}}

	measureBER := func(e enc, snrDB float64) (float64, error) {
		// Per-sample noise sigma for unit-amplitude levels.
		sigma := powNeg20(snrDB)
		// Trials are independent; per-trial error counts summed in index
		// order keep the BER table identical at any GOMAXPROCS.
		label := fmt.Sprintf("ber-%s-%v", e.name, snrDB)
		trialErrs, err := engine.TrialsCtx(cfg.Context(), cfg.Limits, cfg.Seed, label, trials, func(_ int, r *rng.Rand) (int, error) {
			payload := make(gen2.Bits, nbits)
			for i := range payload {
				payload[i] = byte(r.Intn(2))
			}
			var wave []float64
			var err error
			var decode func([]float64) (gen2.Bits, error)
			if e.miller == 0 {
				fe := gen2.FM0Encoder{SamplesPerHalfBit: sp}
				wave, err = fe.Encode(payload)
				if err != nil {
					return 0, err
				}
				pre := len(gen2.FM0PreambleHalfBits) * sp
				dec := gen2.FM0Decoder{SamplesPerHalfBit: sp}
				decode = func(w []float64) (gen2.Bits, error) {
					return dec.DecodePayload(w[pre:], nbits)
				}
			} else {
				me := gen2.MillerEncoder{M: e.miller, SamplesPerCycle: 2 * sp}
				wave, err = me.Encode(payload)
				if err != nil {
					return 0, err
				}
				off := gen2.MillerPayloadOffset(e.miller, 2*sp)
				dec := gen2.MillerDecoder{M: e.miller, SamplesPerCycle: 2 * sp}
				decode = func(w []float64) (gen2.Bits, error) {
					return dec.DecodePayload(w[off:], nbits)
				}
			}
			noisy := make([]float64, len(wave))
			for i, v := range wave {
				noisy[i] = v + sigma*r.NormFloat64()
			}
			got, err := decode(noisy)
			if err != nil {
				return 0, err
			}
			bitErrs := 0
			for i := range payload {
				if got[i] != payload[i] {
					bitErrs++
				}
			}
			return bitErrs, nil
		})
		if err != nil {
			return 0, err
		}
		errors, total := 0, trials*nbits
		for _, e := range trialErrs {
			errors += e
		}
		return float64(errors) / float64(total), nil
	}

	for _, snrDB := range []float64{-12, -9, -6, -3, 0, 3} {
		row := []engine.Cell{engine.Number("%.0f", snrDB)}
		for _, e := range encodings {
			ber, err := measureBER(e, snrDB)
			if err != nil {
				return nil, err
			}
			row = append(row, engine.Number("%.3f", ber))
		}
		res.AddRow(row...)
	}
	res.AddNote("per-sample SNR = 20·log10(1/σ) on ±1 levels; a Miller-M demodulator integrates M× more samples per bit")
	res.AddNote("the crossover SNR improves ≈3 dB per doubling of M, at M× the on-air time per bit")
	return res, nil
}

// powNeg20 converts an SNR in dB on unit-amplitude levels to a noise σ:
// σ = 10^(−snr/20).
func powNeg20(snrDB float64) float64 {
	return math.Pow(10, -snrDB/20)
}
