package ivnsim

import (
	"fmt"
	"math"

	"ivn/internal/gen2"
	"ivn/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "ablation-miller",
		Title: "Uplink encoding robustness: FM0 vs Miller-2/4/8 payload BER vs SNR",
		Paper: "Gen2's M field trades rate for robustness; each Miller bit spreads over M subcarrier cycles",
		Run:   runAblationMiller,
	})
}

// runAblationMiller measures raw payload bit-error rate for each uplink
// encoding at matched per-sample SNR and alignment. A Miller-M bit spans
// M subcarrier cycles (M× the on-air time of an FM0 bit at the same link
// frequency), so its demodulator integrates M× more samples per decision:
// the classic rate-for-robustness trade, isolated from preamble detection.
func runAblationMiller(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "ablation-miller",
		Title:  "Payload bit-error rate by encoding (aligned capture, known timing)",
		Header: []string{"per-sample SNR (dB)", "FM0", "Miller-2", "Miller-4", "Miller-8"},
	}
	trials := cfg.trials(60, 15)
	parent := rng.New(cfg.Seed)
	const sp = 8 // FM0 samples per half-bit; Miller uses 2·sp per cycle
	const nbits = 16

	type enc struct {
		name   string
		miller int
	}
	encodings := []enc{{"fm0", 0}, {"m2", 2}, {"m4", 4}, {"m8", 8}}

	for _, snrDB := range []float64{-12, -9, -6, -3, 0, 3} {
		row := []string{fmt.Sprintf("%.0f", snrDB)}
		// Per-sample noise sigma for unit-amplitude levels.
		sigma := powNeg20(snrDB)
		for _, e := range encodings {
			// Trials are independent; per-trial error counts summed in index
			// order keep the BER table identical at any GOMAXPROCS.
			label := fmt.Sprintf("ber-%s-%v", e.name, snrDB)
			trialErrs := make([]int, trials)
			err := forEachIndexed(trials, func(trial int) error {
				r := parent.SplitIndexed(label, trial)
				payload := make(gen2.Bits, nbits)
				for i := range payload {
					payload[i] = byte(r.Intn(2))
				}
				var wave []float64
				var err error
				var decode func([]float64) (gen2.Bits, error)
				if e.miller == 0 {
					fe := gen2.FM0Encoder{SamplesPerHalfBit: sp}
					wave, err = fe.Encode(payload)
					if err != nil {
						return err
					}
					pre := len(gen2.FM0PreambleHalfBits) * sp
					dec := gen2.FM0Decoder{SamplesPerHalfBit: sp}
					decode = func(w []float64) (gen2.Bits, error) {
						return dec.DecodePayload(w[pre:], nbits)
					}
				} else {
					me := gen2.MillerEncoder{M: e.miller, SamplesPerCycle: 2 * sp}
					wave, err = me.Encode(payload)
					if err != nil {
						return err
					}
					off := gen2.MillerPayloadOffset(e.miller, 2*sp)
					dec := gen2.MillerDecoder{M: e.miller, SamplesPerCycle: 2 * sp}
					decode = func(w []float64) (gen2.Bits, error) {
						return dec.DecodePayload(w[off:], nbits)
					}
				}
				noisy := make([]float64, len(wave))
				for i, v := range wave {
					noisy[i] = v + sigma*r.NormFloat64()
				}
				got, err := decode(noisy)
				if err != nil {
					return err
				}
				for i := range payload {
					if got[i] != payload[i] {
						trialErrs[trial]++
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			errors, total := 0, trials*nbits
			for _, e := range trialErrs {
				errors += e
			}
			row = append(row, fmt.Sprintf("%.3f", float64(errors)/float64(total)))
		}
		t.AddRow(row...)
	}
	t.AddNote("per-sample SNR = 20·log10(1/σ) on ±1 levels; a Miller-M demodulator integrates M× more samples per bit")
	t.AddNote("the crossover SNR improves ≈3 dB per doubling of M, at M× the on-air time per bit")
	return t, nil
}

// powNeg20 converts an SNR in dB on unit-amplitude levels to a noise σ:
// σ = 10^(−snr/20).
func powNeg20(snrDB float64) float64 {
	return math.Pow(10, -snrDB/20)
}
