package ivnsim

import (
	"fmt"
	"math"

	"ivn/internal/em"
	"ivn/internal/scenario"
	"ivn/internal/stats"
)

// Power-gain experiments: Figs. 9-12.

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Peak power gain vs number of antennas (water tank)",
		Paper: "monotone growth, up to ≈85x at 10 antennas, below the N²=100 optimum",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10a",
		Title: "Power gain vs depth in water (10 antennas)",
		Paper: "flat ≈80x across 0-20 cm depth (absolute power still falls with depth)",
		Run:   runFig10a,
	})
	register(Experiment{
		ID:    "fig10b",
		Title: "Power gain vs tag orientation (10 antennas)",
		Paper: "flat across orientation",
		Run:   runFig10b,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Median power gain across media: CIB vs 10-antenna baseline",
		Paper: "CIB ≈80x in every medium; baseline ≈10x (pure power advantage)",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "CDF of CIB/baseline peak power ratio",
		Paper: ">99% of trials above 1x, median ≈8x, tail beyond 100x",
		Run:   runFig12,
	})
}

func gainStats(samples []GainSample, pick func(GainSample) float64) (stats.Summary, error) {
	xs := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = pick(s)
	}
	return stats.Summarize(xs)
}

func runFig9(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "Peak power gain (vs single antenna) by antenna count",
		Header: []string{"antennas", "p10", "median", "p90"},
	}
	trials := cfg.trials(150, 30)
	sc := scenario.NewTank(0.5, em.Water, 0.10)
	for n := 1; n <= 10; n++ {
		samples, err := RunGainTrials(sc, n, trials, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		s, err := gainStats(samples, func(g GainSample) float64 { return g.CIB / g.Single })
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", s.P10),
			fmt.Sprintf("%.1f", s.Median),
			fmt.Sprintf("%.1f", s.P90),
		)
	}
	t.AddNote("%d trials per point; gain = CIB envelope peak / single-antenna peak at the same location", trials)
	return t, nil
}

func runFig10a(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig10a",
		Title:  "Power gain vs depth in water, 10-antenna CIB",
		Header: []string{"depth (cm)", "p10", "median", "p90", "abs peak (dBm)"},
	}
	trials := cfg.trials(60, 15)
	depths := []float64{0, 0.05, 0.10, 0.15, 0.20}
	base := scenario.NewTank(0.5, em.Water, 0)
	for _, d := range depths {
		sc := base.WithDepth(d)
		samples, err := RunGainTrials(sc, 10, trials, cfg.Seed+uint64(d*1000))
		if err != nil {
			return nil, err
		}
		s, err := gainStats(samples, func(g GainSample) float64 { return g.CIB / g.Single })
		if err != nil {
			return nil, err
		}
		abs, err := gainStats(samples, func(g GainSample) float64 { return g.CIB })
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%.0f", d*100),
			fmt.Sprintf("%.1f", s.P10),
			fmt.Sprintf("%.1f", s.Median),
			fmt.Sprintf("%.1f", s.P90),
			fmt.Sprintf("%.1f", 10*math.Log10(abs.Median)+30),
		)
	}
	t.AddNote("gain is depth-independent while the absolute delivered power falls with depth (paper §6.1.1b)")
	return t, nil
}

func runFig10b(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig10b",
		Title:  "Power gain vs tag orientation, 10-antenna CIB",
		Header: []string{"orientation (rad)", "p10", "median", "p90"},
	}
	trials := cfg.trials(60, 15)
	for _, th := range []float64{0, math.Pi / 4, math.Pi / 2, 3 * math.Pi / 4, math.Pi, 1.25 * math.Pi, 1.5 * math.Pi} {
		sc := scenario.NewTank(0.5, em.Water, 0.10)
		sc.FixedOrientation = th
		samples, err := RunGainTrials(sc, 10, trials, cfg.Seed+uint64(th*100))
		if err != nil {
			return nil, err
		}
		s, err := gainStats(samples, func(g GainSample) float64 { return g.CIB / g.Single })
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%.2f", th),
			fmt.Sprintf("%.1f", s.P10),
			fmt.Sprintf("%.1f", s.Median),
			fmt.Sprintf("%.1f", s.P90),
		)
	}
	t.AddNote("orientation scales every scheme's channel identically, so the gain ratio is flat")
	return t, nil
}

func runFig11(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "Median power gain across media: 10-antenna CIB vs 10-antenna baseline",
		Header: []string{"medium", "CIB p10", "CIB median", "CIB p90", "baseline median"},
	}
	trials := cfg.trials(100, 20)
	worstP := 0.0
	for mi, sc := range scenario.MediaSweep() {
		samples, err := RunGainTrials(sc, 10, trials, cfg.Seed+uint64(1000*(mi+1)))
		if err != nil {
			return nil, err
		}
		cib, err := gainStats(samples, func(g GainSample) float64 { return g.CIB / g.Single })
		if err != nil {
			return nil, err
		}
		blind, err := gainStats(samples, func(g GainSample) float64 { return g.Blind / g.Single })
		if err != nil {
			return nil, err
		}
		// Significance of the CIB-vs-baseline separation in this medium
		// (Welch's t on log-gains, which are closer to symmetric).
		logCIB := make([]float64, len(samples))
		logBlind := make([]float64, len(samples))
		for i, s := range samples {
			logCIB[i] = math.Log(s.CIB / s.Single)
			logBlind[i] = math.Log(s.Blind / s.Single)
		}
		tt, err := stats.WelchTTest(logCIB, logBlind)
		if err != nil {
			return nil, err
		}
		if tt.P > worstP {
			worstP = tt.P
		}
		t.AddRow(
			sc.Name(),
			fmt.Sprintf("%.1f", cib.P10),
			fmt.Sprintf("%.1f", cib.Median),
			fmt.Sprintf("%.1f", cib.P90),
			fmt.Sprintf("%.1f", blind.Median),
		)
	}
	t.AddNote("the baseline's ≈10x comes entirely from radiating 10x total power; CIB's extra ≈8x is the blind beamforming gain")
	t.AddNote("CIB-vs-baseline separation significant in every medium (worst Welch p = %.2g on log-gains)", worstP)
	return t, nil
}

func runFig12(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig12",
		Title:  "CDF of the CIB/baseline peak power ratio (10 antennas each)",
		Header: []string{"power ratio", "CDF"},
	}
	trials := cfg.trials(400, 60)
	sc := scenario.NewTank(0.5, em.Water, 0.10)
	samples, err := RunGainTrials(sc, 10, trials, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ratios := make([]float64, len(samples))
	for i, s := range samples {
		ratios[i] = s.CIB / s.Blind
	}
	cdf, err := stats.NewCDF(ratios)
	if err != nil {
		return nil, err
	}
	for _, x := range []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 100, 300, 1000} {
		t.AddRow(fmt.Sprintf("%.1f", x), fmt.Sprintf("%.3f", cdf.At(x)))
	}
	med := cdf.Quantile(0.5)
	t.AddNote("fraction of trials where CIB beats the baseline: %.3f (paper: >0.99)", cdf.FractionAbove(1))
	t.AddNote("median ratio %.1fx (paper ≈8x); p99 %.0fx (paper reports >100x at some locations)",
		med, cdf.Quantile(0.99))
	return t, nil
}
