package ivnsim

import (
	"math"

	"ivn/internal/em"
	"ivn/internal/engine"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/stats"
)

// Power-gain experiments: Figs. 9-12, declared as engine sweeps.

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Peak power gain vs number of antennas (water tank)",
		Paper: "monotone growth, up to ≈85x at 10 antennas, below the N²=100 optimum",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10a",
		Title: "Power gain vs depth in water (10 antennas)",
		Paper: "flat ≈80x across 0-20 cm depth (absolute power still falls with depth)",
		Run:   runFig10a,
	})
	register(Experiment{
		ID:    "fig10b",
		Title: "Power gain vs tag orientation (10 antennas)",
		Paper: "flat across orientation",
		Run:   runFig10b,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Median power gain across media: CIB vs 10-antenna baseline",
		Paper: "CIB ≈80x in every medium; baseline ≈10x (pure power advantage)",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "CDF of CIB/baseline peak power ratio",
		Paper: ">99% of trials above 1x, median ≈8x, tail beyond 100x",
		Run:   runFig12,
	})
}

func gainStats(samples []GainSample, pick func(GainSample) float64) (stats.Summary, error) {
	xs := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = pick(s)
	}
	return stats.Summarize(xs)
}

// summaryCells renders the p10/median/p90 error-bar triple of a summary.
func summaryCells(s stats.Summary) []engine.Cell {
	return []engine.Cell{
		engine.Number("%.1f", s.P10),
		engine.Number("%.1f", s.Median),
		engine.Number("%.1f", s.P90),
	}
}

func runFig9(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("fig9", "Peak power gain (vs single antenna) by antenna count",
		engine.Col("antennas", ""), engine.Col("p10", ""), engine.Col("median", ""), engine.Col("p90", ""))
	trials := cfg.trials(150, 30)
	sc := scenario.NewTank(0.5, em.Water, 0.10)
	sweep := engine.Sweep[int, GainSample]{
		Trials: trials,
		Plan: func(n int) (uint64, string) {
			return cfg.Seed + uint64(n), "gain-trial"
		},
		// Batched path: the tank scenario is trial-invariant, and the
		// per-worker gain kits absorb the per-trial allocation floor.
		Prepare:    func(int) (any, error) { return sc, nil },
		NewScratch: newGainKit,
		MeasureScratch: func(n int, ctx, scratch any, _ int, r *rng.Rand) (GainSample, error) {
			return measureGainsScratch(scratch.(*gainKit), ctx.(scenario.Scenario), n, nil, r)
		},
		Row: func(n int, samples []GainSample) ([]engine.Cell, error) {
			s, err := gainStats(samples, func(g GainSample) float64 { return g.CIB / g.Single })
			if err != nil {
				return nil, err
			}
			return append([]engine.Cell{engine.Int(n)}, summaryCells(s)...), nil
		},
	}
	if err := sweep.RunIntoCtx(cfg.Context(), cfg.Limits, res, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}); err != nil {
		return nil, err
	}
	res.AddNote("%d trials per point; gain = CIB envelope peak / single-antenna peak at the same location", trials)
	return res, nil
}

func runFig10a(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("fig10a", "Power gain vs depth in water, 10-antenna CIB",
		engine.Col("depth", "cm"), engine.Col("p10", ""), engine.Col("median", ""), engine.Col("p90", ""), engine.Col("abs peak", "dBm"))
	base := scenario.NewTank(0.5, em.Water, 0)
	sweep := engine.Sweep[float64, GainSample]{
		Trials: cfg.trials(60, 15),
		Plan: func(d float64) (uint64, string) {
			return cfg.Seed + uint64(d*1000), "gain-trial"
		},
		// The depth-adjusted tank is built once per point (not per trial)
		// and shared read-only across the point's parallel trials.
		Prepare:    func(d float64) (any, error) { return base.WithDepth(d), nil },
		NewScratch: newGainKit,
		MeasureScratch: func(_ float64, ctx, scratch any, _ int, r *rng.Rand) (GainSample, error) {
			return measureGainsScratch(scratch.(*gainKit), ctx.(scenario.Scenario), 10, nil, r)
		},
		Row: func(d float64, samples []GainSample) ([]engine.Cell, error) {
			s, err := gainStats(samples, func(g GainSample) float64 { return g.CIB / g.Single })
			if err != nil {
				return nil, err
			}
			abs, err := gainStats(samples, func(g GainSample) float64 { return g.CIB })
			if err != nil {
				return nil, err
			}
			row := []engine.Cell{engine.Number("%.0f", d*100)}
			row = append(row, summaryCells(s)...)
			return append(row, engine.Number("%.1f", 10*math.Log10(abs.Median)+30)), nil
		},
	}
	if err := sweep.RunIntoCtx(cfg.Context(), cfg.Limits, res, []float64{0, 0.05, 0.10, 0.15, 0.20}); err != nil {
		return nil, err
	}
	res.AddNote("gain is depth-independent while the absolute delivered power falls with depth (paper §6.1.1b)")
	return res, nil
}

func runFig10b(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("fig10b", "Power gain vs tag orientation, 10-antenna CIB",
		engine.Col("orientation", "rad"), engine.Col("p10", ""), engine.Col("median", ""), engine.Col("p90", ""))
	sweep := engine.Sweep[float64, GainSample]{
		Trials: cfg.trials(60, 15),
		Plan: func(th float64) (uint64, string) {
			return cfg.Seed + uint64(th*100), "gain-trial"
		},
		// The oriented tank is built once per point (not per trial) and
		// shared read-only across the point's parallel trials.
		Prepare: func(th float64) (any, error) {
			sc := scenario.NewTank(0.5, em.Water, 0.10)
			sc.FixedOrientation = th
			return sc, nil
		},
		NewScratch: newGainKit,
		MeasureScratch: func(_ float64, ctx, scratch any, _ int, r *rng.Rand) (GainSample, error) {
			return measureGainsScratch(scratch.(*gainKit), ctx.(scenario.Scenario), 10, nil, r)
		},
		Row: func(th float64, samples []GainSample) ([]engine.Cell, error) {
			s, err := gainStats(samples, func(g GainSample) float64 { return g.CIB / g.Single })
			if err != nil {
				return nil, err
			}
			return append([]engine.Cell{engine.Number("%.2f", th)}, summaryCells(s)...), nil
		},
	}
	orientations := []float64{0, math.Pi / 4, math.Pi / 2, 3 * math.Pi / 4, math.Pi, 1.25 * math.Pi, 1.5 * math.Pi}
	if err := sweep.RunIntoCtx(cfg.Context(), cfg.Limits, res, orientations); err != nil {
		return nil, err
	}
	res.AddNote("orientation scales every scheme's channel identically, so the gain ratio is flat")
	return res, nil
}

// mediumPoint is one fig11 sweep point: a medium scenario and its
// position in the sweep (which seeds its trial streams).
type mediumPoint struct {
	index int
	sc    scenario.Scenario
}

func runFig11(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("fig11", "Median power gain across media: 10-antenna CIB vs 10-antenna baseline",
		engine.Col("medium", ""), engine.Col("CIB p10", ""), engine.Col("CIB median", ""), engine.Col("CIB p90", ""), engine.Col("baseline median", ""))
	worstP := 0.0
	sweep := engine.Sweep[mediumPoint, GainSample]{
		Trials: cfg.trials(100, 20),
		Plan: func(p mediumPoint) (uint64, string) {
			return cfg.Seed + uint64(1000*(p.index+1)), "gain-trial"
		},
		Prepare:    func(p mediumPoint) (any, error) { return p.sc, nil },
		NewScratch: newGainKit,
		MeasureScratch: func(_ mediumPoint, ctx, scratch any, _ int, r *rng.Rand) (GainSample, error) {
			return measureGainsScratch(scratch.(*gainKit), ctx.(scenario.Scenario), 10, nil, r)
		},
		Row: func(p mediumPoint, samples []GainSample) ([]engine.Cell, error) {
			cib, err := gainStats(samples, func(g GainSample) float64 { return g.CIB / g.Single })
			if err != nil {
				return nil, err
			}
			blind, err := gainStats(samples, func(g GainSample) float64 { return g.Blind / g.Single })
			if err != nil {
				return nil, err
			}
			// Significance of the CIB-vs-baseline separation in this medium
			// (Welch's t on log-gains, which are closer to symmetric).
			logCIB := make([]float64, len(samples))
			logBlind := make([]float64, len(samples))
			for i, s := range samples {
				logCIB[i] = math.Log(s.CIB / s.Single)
				logBlind[i] = math.Log(s.Blind / s.Single)
			}
			tt, err := stats.WelchTTest(logCIB, logBlind)
			if err != nil {
				return nil, err
			}
			if tt.P > worstP {
				worstP = tt.P
			}
			row := []engine.Cell{engine.Str(p.sc.Name())}
			row = append(row, summaryCells(cib)...)
			return append(row, engine.Number("%.1f", blind.Median)), nil
		},
	}
	media := scenario.MediaSweep()
	points := make([]mediumPoint, len(media))
	for mi, sc := range media {
		points[mi] = mediumPoint{index: mi, sc: sc}
	}
	if err := sweep.RunIntoCtx(cfg.Context(), cfg.Limits, res, points); err != nil {
		return nil, err
	}
	res.AddNote("the baseline's ≈10x comes entirely from radiating 10x total power; CIB's extra ≈8x is the blind beamforming gain")
	res.AddNote("CIB-vs-baseline separation significant in every medium (worst Welch p = %.2g on log-gains)", worstP)
	return res, nil
}

func runFig12(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("fig12", "CDF of the CIB/baseline peak power ratio (10 antennas each)",
		engine.Col("power ratio", ""), engine.Col("CDF", ""))
	trials := cfg.trials(400, 60)
	sc := scenario.NewTank(0.5, em.Water, 0.10)
	samples, err := RunGainTrialsCtx(cfg.Context(), cfg.Limits, sc, 10, trials, cfg.Seed, cfg.Trace, "fig12")
	if err != nil {
		return nil, err
	}
	ratios := make([]float64, len(samples))
	for i, s := range samples {
		ratios[i] = s.CIB / s.Blind
	}
	cdf, err := stats.NewCDF(ratios)
	if err != nil {
		return nil, err
	}
	for _, x := range []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 100, 300, 1000} {
		res.AddRow(engine.Number("%.1f", x), engine.Number("%.3f", cdf.At(x)))
	}
	med := cdf.Quantile(0.5)
	res.AddNote("fraction of trials where CIB beats the baseline: %.3f (paper: >0.99)", cdf.FractionAbove(1))
	res.AddNote("median ratio %.1fx (paper ≈8x); p99 %.0fx (paper reports >100x at some locations)",
		med, cdf.Quantile(0.99))
	return res, nil
}
