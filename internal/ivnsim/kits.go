package ivnsim

import (
	"math"

	"ivn/internal/baseline"
	"ivn/internal/core"
	"ivn/internal/link"
	"ivn/internal/radio"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/session"
	"ivn/internal/tag"
)

// Worker kits: per-worker scratch for the batched trial paths. A kit is
// handed to one scheduler worker via engine.Scratches and reused across
// every trial (and sweep point) that worker runs, which is what removes
// the per-trial allocation floors of the Fig9/Fig13 experiments. Kits
// draw exactly the variate sequences of the original per-trial code —
// the golden tables pin this — and must never be shared between
// concurrently running trials.

// gainKit is one worker's reusable state for gain trials (Fig9-12): the
// realized placement (channels + ray buffers), the CIB beamformer
// (relocked, not rebuilt, while the antenna count and carrier are
// stable), and carrier/coefficient buffers.
type gainKit struct {
	placement scenario.Placement
	bf        *core.Beamformer
	chans     []complex128
	carr      []radio.Carrier
	single    [1]radio.Carrier
	child     rng.Rand
}

func newGainKit() any { return new(gainKit) }

// measureGainsScratch is MeasureGains through a worker kit: realize the
// placement into retained storage, then measure the four schemes against
// identical channels. Draw order matches MeasureGains exactly (placement
// draws, "cib" split + PLL locks, "blind" split + phases).
func measureGainsScratch(k *gainKit, sc scenario.Scenario, n int, tr *session.Trace, r *rng.Rand) (GainSample, error) {
	var out GainSample
	if err := scenario.RealizeInto(sc, &k.placement, n, r); err != nil {
		return out, err
	}
	p := &k.placement
	g := p.Geometry()
	k.chans = link.DownlinkCoeffsInto(k.chans[:0], p, g.CIBFreq)
	amp := link.ChainAmplitude()

	// CIB: offset carriers with fresh random PLL phases. core.New's only
	// randomness is the array lock, so relocking the retained beamformer
	// reproduces a rebuild's phase stream exactly.
	r.SplitInto(&k.child, "cib")
	//ivn:allow floatcmp exact cache-key identity check: any difference must force a rebuild
	if k.bf == nil || k.bf.N() != n || k.bf.CenterFreq != g.CIBFreq {
		cfg := core.DefaultConfig()
		cfg.Antennas = n
		cfg.CenterFreq = g.CIBFreq
		bf, err := core.New(cfg, &k.child)
		if err != nil {
			return out, err
		}
		k.bf = bf
	} else {
		k.bf.Relock(&k.child)
	}
	k.carr = k.bf.AppendCarriers(k.carr[:0])
	var err error
	out.CIB, err = baseline.PeakReceivedPowerRefined(k.carr, k.chans, link.ScanDuration, link.ScanCoarse, link.ScanSamples)
	if err != nil {
		return out, err
	}
	if tr != nil {
		// Gain trials realize the CIB downlink without a full Link (no
		// reader leg); report it with the same event the link layer emits.
		tr.Emit(session.Event{Kind: session.EvLinkRealized, Value: 10*math.Log10(out.CIB) + 30})
	}

	// Single antenna: chain 0 alone.
	k.single[0] = radio.Carrier{Freq: g.CIBFreq, Phase: 0, Amplitude: amp}
	out.Single, err = baseline.PeakReceivedPower(k.single[:], k.chans[:1], link.ScanDuration, 1)
	if err != nil {
		return out, err
	}

	// Blind same-frequency array.
	r.SplitInto(&k.child, "blind")
	blind, err := baseline.BlindArrayInto(k.carr[:0], n, g.CIBFreq, amp, &k.child)
	if err != nil {
		return out, err
	}
	out.Blind, err = baseline.PeakReceivedPower(blind, k.chans, link.ScanDuration, 1)
	if err != nil {
		return out, err
	}

	// Oracle MRT.
	mrt, err := baseline.OracleMRTInto(k.carr[:0], g.CIBFreq, amp, k.chans)
	if err != nil {
		return out, err
	}
	out.MRT, err = baseline.PeakReceivedPower(mrt, k.chans, link.ScanDuration, 1)
	if err != nil {
		return out, err
	}
	return out, nil
}

// commKit is one worker's reusable state for communication trials
// (Fig13): the realized placement plus the link layer's trial kit, and a
// persistent child generator for the tag's RN16 draws.
type commKit struct {
	placement scenario.Placement
	lk        link.TrialKit
	tagRand   rng.Rand
}

func newCommKit() any { return new(commKit) }

// runCommScratch is RunCommTrial through a worker kit: placement and
// link chain land in retained storage; the exchange itself is shared
// with runCommAt. Draw order matches RunCommTrial exactly.
func runCommScratch(k *commKit, sc scenario.Scenario, n int, model tag.Model, opts CommOptions, r *rng.Rand) (CommTrial, error) {
	if err := scenario.RealizeInto(sc, &k.placement, n, r); err != nil {
		return CommTrial{}, err
	}
	lk, err := k.lk.ForTrial(&k.placement, n, opts.Trace, r)
	if err != nil {
		return CommTrial{}, err
	}
	r.SplitInto(&k.tagRand, "tag")
	return commExchangeAt(lk, &k.tagRand, model, opts, r)
}
