package ivnsim

import (
	"context"
	"fmt"
	"sort"

	"ivn/internal/engine"
	"ivn/internal/session"
)

// Config tunes an experiment run.
type Config struct {
	// Seed drives every random draw; equal seeds reproduce identical
	// tables.
	Seed uint64
	// Trials overrides the experiment's default trial count when > 0.
	Trials int
	// Quick shrinks the workload for CI-style runs.
	Quick bool
	// FaultScales overrides the fault-matrix intensity sweep when
	// non-empty (multiples of the default fault config; 0 = fault-free).
	FaultScales []float64
	// Trace, when non-nil, collects the typed event streams of every
	// traced trial, one span per trial (e.g. "fig12/0007"). Nil is free;
	// the serialized log is byte-identical at any GOMAXPROCS.
	Trace *session.TraceLog
	// Ctx, when non-nil, cancels the run cooperatively: the scheduler
	// checks it between trials and between sweep points, so a cancelled
	// run returns the context's error promptly without publishing a
	// partial table. Nil means context.Background(). Cancellation never
	// changes the rows of a run that completes.
	Ctx context.Context
	// Limits is this run's scheduler configuration — parallelism cap and
	// optional metrics — carried per run so concurrent jobs in one
	// process (daemon workloads) stay independent. The zero value
	// inherits the process defaults.
	Limits engine.Limits
}

// Context resolves the run's cancellation context (nil → Background).
func (c Config) Context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// trials resolves the effective trial count.
func (c Config) trials(def, quick int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return quick
	}
	return def
}

// Experiment reproduces one of the paper's figures or tables.
type Experiment struct {
	// ID is the registry key (e.g. "fig9").
	ID string
	// Title describes what the experiment reproduces.
	Title string
	// Paper summarizes the published result the output should be compared
	// against.
	Paper string
	// Run executes the experiment through the trial engine and returns
	// its typed result.
	Run func(Config) (*engine.Result, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("ivnsim: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Registry returns every experiment, sorted by id.
func Registry() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("ivnsim: unknown experiment %q (use one of %v)", id, ids())
	}
	return e, nil
}

func ids() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
