package ivnsim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ivn/internal/engine"
)

// Renderer equivalence suite: the committed goldens under testdata/golden
// were captured from the pre-engine string pipeline (Seed 11, Quick).
// Every experiment's typed result must render to those exact bytes — the
// engine migration is only allowed to change how tables are built, never
// a single output byte — and must survive a JSON round trip unchanged.

// goldenConfig matches the configuration the goldens were captured with.
func goldenConfig() Config { return Config{Seed: 11, Quick: true} }

func TestRenderersMatchCommittedGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(goldenConfig())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			for ext, render := range map[string]engine.Renderer{
				"txt": engine.RenderText,
				"csv": engine.RenderCSV,
			} {
				want, err := os.ReadFile(filepath.Join("testdata", "golden", e.ID+"."+ext))
				if err != nil {
					t.Fatalf("missing golden: %v", err)
				}
				var buf bytes.Buffer
				if err := render(res, &buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Errorf("%s.%s differs from the committed golden:\ngot:\n%s\nwant:\n%s",
						e.ID, ext, buf.String(), want)
				}
			}
		})
	}
}

func TestResultsRoundTripThroughJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(goldenConfig())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			var buf bytes.Buffer
			if err := engine.RenderJSON(res, &buf); err != nil {
				t.Fatal(err)
			}
			var back engine.Result
			if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
				t.Fatalf("%s: bad JSON: %v", e.ID, err)
			}
			if !reflect.DeepEqual(*res, back) {
				t.Fatalf("%s changed across the JSON round trip", e.ID)
			}
		})
	}
}
