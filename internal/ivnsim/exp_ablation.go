package ivnsim

import (
	"fmt"
	"math"

	"ivn/internal/baseline"
	"ivn/internal/core"
	"ivn/internal/em"
	"ivn/internal/engine"
	"ivn/internal/gen2"
	"ivn/internal/link"
	"ivn/internal/pool"
	"ivn/internal/radio"
	"ivn/internal/reader"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/stats"
	"ivn/internal/tag"
)

// Ablation experiments for the design choices DESIGN.md calls out.

func init() {
	register(Experiment{
		ID:    "ablation-coherent",
		Title: "Oracle coherent beamforming vs CIB vs blind baseline, air vs tissue",
		Paper: "footnote 5: coherent beamforming beats the baseline only in air; through other media the difference is negligible — and it needs channel feedback CIB does not",
		Run:   runAblationCoherent,
	})
	register(Experiment{
		ID:    "ablation-equalpower",
		Title: "CIB under a fixed total power budget (1/√N per-antenna scaling)",
		Paper: "§3.4: equal-budget CIB still yields an N× peak power gain",
		Run:   runAblationEqualPower,
	})
	register(Experiment{
		ID:    "ablation-twostage",
		Title: "Two-stage CIB: discovery (peak) vs steady (conduction-angle) plans",
		Paper: "§3.7: with attenuation known, optimizing time-above-threshold transfers more energy",
		Run:   runAblationTwoStage,
	})
	register(Experiment{
		ID:    "ablation-flatness",
		Title: "Downlink decode success vs RMS frequency offset (Eq. 9 cliff)",
		Paper: "RMS offsets beyond ≈199 Hz corrupt an 800 µs query's envelope",
		Run:   runAblationFlatness,
	})
	register(Experiment{
		ID:    "ablation-averaging",
		Title: "Uplink decode success vs coherent averaging periods",
		Paper: "§5b: 1 s coherent averaging is what makes deep-tissue uplinks decodable",
		Run:   runAblationAveraging,
	})
	register(Experiment{
		ID:    "ablation-outofband",
		Title: "In-band vs out-of-band reader under CIB self-jamming",
		Paper: "§4: the in-band receiver saturates; the out-of-band SAW-filtered receiver does not",
		Run:   runAblationOutOfBand,
	})
}

func runAblationCoherent(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("ablation-coherent", "Median peak power gain over a single antenna (10 antennas)",
		engine.Col("medium", ""), engine.Col("CIB (blind)", ""), engine.Col("oracle MRT", ""), engine.Col("blind array", ""))
	sweep := engine.Sweep[scenario.Scenario, GainSample]{
		Trials: cfg.trials(80, 20),
		Plan: func(scenario.Scenario) (uint64, string) {
			// Every medium reuses the same streams: RunGainTrials' historical
			// seeding, kept for byte-identical tables.
			return cfg.Seed, "gain-trial"
		},
		Measure: func(sc scenario.Scenario, _ int, r *rng.Rand) (GainSample, error) {
			return MeasureGains(sc, 10, r)
		},
		Row: func(sc scenario.Scenario, samples []GainSample) ([]engine.Cell, error) {
			cib, err := gainStats(samples, func(g GainSample) float64 { return g.CIB / g.Single })
			if err != nil {
				return nil, err
			}
			mrt, err := gainStats(samples, func(g GainSample) float64 { return g.MRT / g.Single })
			if err != nil {
				return nil, err
			}
			blind, err := gainStats(samples, func(g GainSample) float64 { return g.Blind / g.Single })
			if err != nil {
				return nil, err
			}
			return []engine.Cell{
				engine.Str(sc.Name()),
				engine.Number("%.1f", cib.Median),
				engine.Number("%.1f", mrt.Median),
				engine.Number("%.1f", blind.Median),
			}, nil
		},
	}
	err := sweep.RunIntoCtx(cfg.Context(), cfg.Limits, res, []scenario.Scenario{
		scenario.NewAir(3),
		scenario.NewTank(0.5, em.Water, 0.10),
		scenario.NewTank(0.5, em.Muscle, 0.05),
	})
	if err != nil {
		return nil, err
	}
	res.AddNote("oracle MRT needs per-antenna channel feedback — unobtainable from an unpowered implant")
	res.AddNote("CIB reaches a large fraction of the oracle gain with zero channel knowledge")
	return res, nil
}

// equalPowerSample is one equal-budget trial: gains under the fixed total
// budget and under the N-chain budget, against the same placement.
// Exported fields: journaled runs serialize samples to JSONL.
type equalPowerSample struct {
	Eq, Full float64
}

func runAblationEqualPower(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("ablation-equalpower", "CIB peak power gain with total power fixed to one chain's budget",
		engine.Col("antennas", ""), engine.Col("median gain (equal budget)", ""), engine.Col("median gain (N× budget)", ""))
	sc := scenario.NewTank(0.5, em.Water, 0.10)
	sweep := engine.Sweep[int, equalPowerSample]{
		Trials: cfg.trials(80, 20),
		Plan: func(n int) (uint64, string) {
			return cfg.Seed, fmt.Sprintf("eqp-%d", n)
		},
		Measure: func(n, _ int, r *rng.Rand) (equalPowerSample, error) {
			var s equalPowerSample
			p, err := sc.Realize(n, r)
			if err != nil {
				return s, err
			}
			chans := link.DownlinkCoeffs(p, 915e6)
			bcfg := core.DefaultConfig()
			bcfg.Antennas = n
			bf, err := core.New(bcfg, r.Split("cib"))
			if err != nil {
				return s, err
			}
			pf, err := baseline.PeakReceivedPowerRefined(bf.Carriers(), chans, link.ScanDuration, link.ScanCoarse, link.ScanSamples)
			if err != nil {
				return s, err
			}
			pe, err := baseline.PeakReceivedPowerRefined(bf.EqualPowerCarriers(), chans, link.ScanDuration, link.ScanCoarse, link.ScanSamples)
			if err != nil {
				return s, err
			}
			single := baseline.SingleAntenna(915e6, link.ChainAmplitude())
			ps, err := baseline.PeakReceivedPower(single, chans[:1], link.ScanDuration, 1)
			if err != nil {
				return s, err
			}
			s.Eq = pe / ps
			s.Full = pf / ps
			return s, nil
		},
		Row: func(n int, samples []equalPowerSample) ([]engine.Cell, error) {
			eq := make([]float64, len(samples))
			full := make([]float64, len(samples))
			for i, s := range samples {
				eq[i] = s.Eq
				full[i] = s.Full
			}
			se, err := stats.Summarize(eq)
			if err != nil {
				return nil, err
			}
			sf, err := stats.Summarize(full)
			if err != nil {
				return nil, err
			}
			return []engine.Cell{
				engine.Int(n),
				engine.Number("%.1f", se.Median),
				engine.Number("%.1f", sf.Median),
			}, nil
		},
	}
	if err := sweep.RunIntoCtx(cfg.Context(), cfg.Limits, res, []int{2, 4, 8, 10}); err != nil {
		return nil, err
	}
	res.AddNote("equal-budget gain tracks ≈N (paper §3.4); the N× budget adds another factor of N")
	return res, nil
}

func runAblationTwoStage(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("ablation-twostage", "Discovery (peak-optimized) vs steady (dwell-optimized) plans, N=5",
		engine.Col("plan", ""), engine.Col("offsets", "Hz"), engine.Col("E[peak]/N", ""), engine.Col("E[dwell above 0.45N]", "ms"))
	r := rng.New(cfg.Seed)
	ocfg := core.DefaultOptimizerConfig()
	if cfg.Quick {
		ocfg.Trials, ocfg.SamplesPerTrial, ocfg.Restarts, ocfg.StepsPerRestart = 12, 1024, 2, 16
	}
	const n, rho = 5, 0.45
	discovery, err := core.Optimize(n, ocfg, r.Split("disc"))
	if err != nil {
		return nil, err
	}
	steady, err := core.OptimizeConductionAngle(n, rho, ocfg, r.Split("steady"))
	if err != nil {
		return nil, err
	}
	evalPeak := func(offs []float64) float64 {
		return core.ExpectedPeak(offs, 60, 4096, rng.New(cfg.Seed+101))
	}
	evalDwell := func(offs []float64) float64 {
		return core.ExpectedDwellTime(offs, rho*n, 60, 8192, rng.New(cfg.Seed+102))
	}
	for _, row := range []struct {
		name string
		plan core.Plan
	}{{"discovery", discovery}, {"steady", steady}} {
		res.AddRow(
			engine.Str(row.name),
			engine.List(row.plan.Offsets),
			engine.Number("%.3f", evalPeak(row.plan.Offsets)/n),
			engine.Number("%.2f", evalDwell(row.plan.Offsets)*1e3),
		)
	}
	res.AddNote("the steady plan holds the envelope above the (now known) threshold for longer contiguous bursts, trading peak height for charge time (§3.7)")
	return res, nil
}

// flatnessSample is one flatness trial: whether the query decoded and the
// worst high-level envelope fluctuation observed. Exported fields:
// journaled runs serialize samples to JSONL.
type flatnessSample struct {
	Decoded bool
	Fluct   float64
}

func runAblationFlatness(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("ablation-flatness", "Query decode success vs plan RMS offset (tag envelope detector)",
		engine.Col("RMS Δf", "Hz"), engine.Col("decode success", ""), engine.Col("envelope fluctuation α", ""))
	trials := cfg.trials(40, 10)
	pie := gen2.DefaultPIE(1e6)
	q := &gen2.Query{Q: 4}
	bits := q.AppendBits(nil)
	baseEnv, err := pie.EncodeFrame(bits, true)
	if err != nil {
		return nil, err
	}
	// Extend with CW so the decoder sees the frame end.
	env := append(append([]float64(nil), baseEnv...), ones(2000)...)
	// Candidate plans with growing RMS: scaled versions of the paper set.
	sweep := engine.Sweep[float64, flatnessSample]{
		Trials: trials,
		Plan: func(scale float64) (uint64, string) {
			return cfg.Seed, fmt.Sprintf("flat-%v", scale)
		},
		Measure: func(scale float64, _ int, r *rng.Rand) (flatnessSample, error) {
			var s flatnessSample
			offsets := make([]float64, 10)
			for i, f := range core.PaperOffsets() {
				offsets[i] = f * scale
			}
			betas := make([]float64, len(offsets))
			for i := range betas {
				if i > 0 {
					betas[i] = r.Phase()
				}
			}
			// Align the envelope peak with the command start (the beamformer
			// times commands near peaks); sample the beat envelope across
			// the frame.
			_, peakIdx := peakIndex(offsets, betas)
			combined := make([]float64, len(env))
			var lo, hi float64 = math.Inf(1), 0
			for k := range env {
				tm := peakIdx + float64(k)/1e6
				b := core.Envelope(offsets, betas, tm)
				combined[k] = env[k] * b
				if env[k] > 0.5 { // measure fluctuation on the high level only
					lo = math.Min(lo, b)
					hi = math.Max(hi, b)
				}
			}
			if hi > 0 {
				s.Fluct = (hi - lo) / hi
			}
			got, _, err := pie.DecodeFrame(combined)
			s.Decoded = err == nil && got.Equal(bits)
			return s, nil
		},
		Row: func(scale float64, samples []flatnessSample) ([]engine.Cell, error) {
			offsets := make([]float64, 10)
			for i, f := range core.PaperOffsets() {
				offsets[i] = f * scale
			}
			ok := 0
			var worstFluct float64
			for _, s := range samples {
				if s.Decoded {
					ok++
				}
				worstFluct = math.Max(worstFluct, s.Fluct)
			}
			return []engine.Cell{
				engine.Number("%.0f", core.RMSOffset(offsets)),
				engine.Counts(ok, trials),
				engine.Number("%.2f", worstFluct),
			}, nil
		},
	}
	if err := sweep.RunIntoCtx(cfg.Context(), cfg.Limits, res, []float64{0.5, 1, 2, 4, 8, 16}); err != nil {
		return nil, err
	}
	res.AddNote("the Eq. 9 limit for this 1.06 ms query is %.0f Hz; success collapses beyond it", mustLimitFor(pie, bits))
	return res, nil
}

func mustLimitFor(pie gen2.PIEParams, bits gen2.Bits) float64 {
	l, err := core.FlatnessLimit(core.DefaultFlatnessAlpha, pie.FrameDuration(bits, true))
	if err != nil {
		panic(err)
	}
	return l
}

func peakIndex(offsets, betas []float64) (float64, float64) {
	const n = 4096
	buf := pool.Float64(n)
	defer pool.PutFloat64(buf)
	core.EnvelopeSeries(offsets, betas, 1.0, n, buf)
	best, bestK := 0.0, 0
	for k, y := range buf {
		if y > best {
			best, bestK = y, k
		}
	}
	return best, float64(bestK) / n
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func runAblationAveraging(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("ablation-averaging", "Gastric uplink decode success vs coherent averaging periods",
		engine.Col("averaging periods K", ""), engine.Col("decoded", ""))
	trials := cfg.trials(20, 8)
	sc := scenario.NewSwine(scenario.Gastric)
	model := tag.StandardTag()
	sweep := engine.Sweep[int, bool]{
		Trials: trials,
		Plan: func(int) (uint64, string) {
			return cfg.Seed, "avg" // same placements across K
		},
		Measure: func(k, _ int, r *rng.Rand) (bool, error) {
			p, err := sc.Realize(8, r)
			if err != nil {
				return false, err
			}
			tg, err := tag.New(model, []byte{0xE2, 0x00, 0x12, 0x34}, r.Split("tag"))
			if err != nil {
				return false, err
			}
			chans := link.DownlinkCoeffs(p, 915e6)
			bcfg := core.DefaultConfig()
			bcfg.Antennas = 8
			bf, err := core.New(bcfg, r.Split("cib"))
			if err != nil {
				return false, err
			}
			peak, err := baseline.PeakReceivedPowerRefined(bf.Carriers(), chans, link.ScanDuration, link.ScanCoarse, link.ScanSamples)
			if err != nil {
				return false, err
			}
			tg.UpdatePower(peak)
			if !tg.Powered() {
				return false, nil
			}
			reply := tg.HandleCommand(&gen2.Query{Q: 0})
			if reply.Kind != gen2.ReplyRN16 {
				return false, nil
			}
			rd := reader.New()
			rd.AveragingPeriods = k
			// Weaken the reader transmit power so the uplink SNR — not
			// power-up — is the binding constraint the sweep exposes.
			rd.TxAmplitude = 0.2
			bs, err := tg.BackscatterWaveform(reply, rd.SamplesPerHalfBit)
			if err != nil {
				return false, err
			}
			tagG := model.AntennaAmplitudeGain()
			gain := reader.RoundTripGain(rd.TxAmplitude, p.ReaderDown.Coefficient(rd.TxFreq), p.ReaderUp.Coefficient(rd.TxFreq)) * complex(tagG*tagG, 0)
			leak := p.CIBLeakPerWatt * 8 * link.ChainAmplitude() * link.ChainAmplitude()
			jam := []radio.ToneAt{{Freq: 915e6, Power: leak}}
			if dr, err := rd.DecodeUplink(bs, gain, jam, len(reply.Bits), r.Split(fmt.Sprintf("ul-%d", k))); err == nil && dr.Bits.Equal(reply.Bits) {
				return true, nil
			}
			return false, nil
		},
		Row: func(k int, decoded []bool) ([]engine.Cell, error) {
			ok := 0
			for _, d := range decoded {
				if d {
					ok++
				}
			}
			return []engine.Cell{engine.Int(k), engine.Counts(ok, trials)}, nil
		},
	}
	if err := sweep.RunIntoCtx(cfg.Context(), cfg.Limits, res, []int{1, 2, 4, 8, 16, 32, 64}); err != nil {
		return nil, err
	}
	res.AddNote("identical placements across rows; only the averaging depth changes")
	return res, nil
}

func runAblationOutOfBand(cfg Config) (*engine.Result, error) {
	res := engine.NewResult("ablation-outofband", "Reader architecture under CIB self-jamming (10 chains at 30 dBm)",
		engine.Col("reader", ""), engine.Col("saturated", ""), engine.Col("effective interference", "dBm"), engine.Col("decode possible", ""))
	p, err := scenario.NewTank(0.5, em.Water, 0.10).Realize(10, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	leak := p.CIBLeakPerWatt * 10 * link.ChainAmplitude() * link.ChainAmplitude()
	jam := []radio.ToneAt{{Freq: 915e6, Power: leak}}
	model := tag.StandardTag()
	tagG := model.AntennaAmplitudeGain()
	modAmp := reader.ModulationAmplitude(model.BackscatterGain, model.BackscatterDepth)

	mk := func(center float64) *reader.Reader {
		rd := reader.New()
		rd.TxFreq = center
		rd.RX = radio.NewReceiver(center)
		return rd
	}
	for _, row := range []struct {
		name   string
		reader *reader.Reader
	}{
		{"in-band (915 MHz)", mk(915e6)},
		{"out-of-band (880 MHz)", mk(880e6)},
	} {
		rd := row.reader
		gain := reader.RoundTripGain(rd.TxAmplitude, p.ReaderDown.Coefficient(rd.TxFreq), p.ReaderUp.Coefficient(rd.TxFreq)) * complex(tagG*tagG, 0)
		sat := rd.RX.Saturated(jam)
		eff := rd.RX.EffectiveInterference(jam)
		dec := rd.DecodableRN16(gain, modAmp, jam)
		res.AddRow(
			engine.Str(row.name),
			engine.Bool(sat),
			engine.Number("%.1f", 10*math.Log10(eff)+30),
			engine.Bool(dec),
		)
	}
	res.AddNote("CIB leak at the reader antenna: %.1f dBm", 10*math.Log10(leak)+30)
	return res, nil
}
