package reader

import (
	"testing"

	"ivn/internal/gen2"
	"ivn/internal/rng"
	"ivn/internal/tag"
)

// makeMillerReply builds a tag reply in Miller-M encoding.
func makeMillerReply(t *testing.T, m, sp int) (gen2.Reply, []float64) {
	t.Helper()
	tg, err := tag.New(tag.StandardTag(), []byte{0x56, 0x78}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	tg.UpdatePower(tg.Model.MinPeakPower() * 2)
	var mbits byte
	switch m {
	case 2:
		mbits = 1
	case 4:
		mbits = 2
	case 8:
		mbits = 3
	}
	reply := tg.HandleCommand(&gen2.Query{Q: 0, M: mbits})
	if reply.Kind != gen2.ReplyRN16 {
		t.Fatalf("reply = %s", reply.Kind)
	}
	bs, err := tg.BackscatterWaveform(reply, sp)
	if err != nil {
		t.Fatal(err)
	}
	return reply, bs
}

// TestZeroValueReaderDecodesFM0: a zero-value Reader (no New(), every
// field at its zero) must decode on the FM0 path using the documented
// defaults — the satellite-3 regression. Before the fix, Validate
// rejected the zero value outright and DecodableRN16 read the raw zero
// AveragingPeriods.
func TestZeroValueReaderDecodesFM0(t *testing.T) {
	var r Reader
	_, reply, bs := makeReply(t, DefaultSamplesPerHalfBit)
	link := RoundTripGain(DefaultTxAmplitude, complex(1e-2, 0), complex(0, 1e-2))
	res, err := r.DecodeUplink(bs, link, nil, 16, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bits.Equal(reply.Bits) {
		t.Fatalf("decoded %s, want %s", res.Bits, reply.Bits)
	}
	// The zero-value reader must agree with the explicitly-defaulted one.
	want, err := New().DecodeUplink(bs, link, nil, 16, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bits.Equal(want.Bits) || res.Correlation != want.Correlation {
		t.Fatalf("zero-value decode differs from New(): %+v vs %+v", res, want)
	}
	if !r.DecodableRN16(link, 0.1, nil) {
		t.Fatal("zero-value DecodableRN16 rejected a strong link")
	}
}

// TestZeroValueReaderDecodesMiller: the same regression on the Miller
// path — both decoders must resolve SamplesPerHalfBit and the threshold
// through the same defaulting.
func TestZeroValueReaderDecodesMiller(t *testing.T) {
	const m = 4
	reply, bs := makeMillerReply(t, m, DefaultSamplesPerHalfBit)
	r := Reader{Miller: m}
	link := RoundTripGain(DefaultTxAmplitude, complex(1e-2, 0), complex(0, 1e-2))
	res, err := r.DecodeUplink(bs, link, nil, 16, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bits.Equal(reply.Bits) {
		t.Fatalf("decoded %s, want %s", res.Bits, reply.Bits)
	}
	full := New()
	full.Miller = m
	want, err := full.DecodeUplink(bs, link, nil, 16, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bits.Equal(want.Bits) || res.Correlation != want.Correlation {
		t.Fatalf("zero-value Miller decode differs from New(): %+v vs %+v", res, want)
	}
}

// scriptedFault corrupts a fixed set of (exchange, attempt) captures.
type scriptedFault map[[2]int]bool

func (s scriptedFault) CaptureCorrupted(exchange, attempt int) bool {
	return s[[2]int{exchange, attempt}]
}

// TestDecodeUplinkWithRetryRecovers: the first capture is corrupted; the
// retry decodes, and the accounting shows exactly what happened.
func TestDecodeUplinkWithRetryRecovers(t *testing.T) {
	r := New()
	_, reply, bs := makeReply(t, r.SamplesPerHalfBit)
	link := RoundTripGain(r.TxAmplitude, complex(1e-2, 0), complex(0, 1e-2))
	fault := scriptedFault{{7, 0}: true}
	res, err := r.DecodeUplinkWithRetry(7, 2, fault, bs, link, nil, 16, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded() {
		t.Fatalf("retry did not recover: %v", res.Attempts)
	}
	if !res.Result.Bits.Equal(reply.Bits) {
		t.Fatalf("decoded %s, want %s", res.Result.Bits, reply.Bits)
	}
	want := []AttemptOutcome{AttemptCorrupted, AttemptOK}
	if len(res.Attempts) != len(want) {
		t.Fatalf("attempts %v, want %v", res.Attempts, want)
	}
	for i := range want {
		if res.Attempts[i] != want[i] {
			t.Fatalf("attempt %d = %s, want %s", i, res.Attempts[i], want[i])
		}
	}
}

// TestDecodeUplinkWithRetryExhaustsBudget: every capture corrupted — the
// budget caps the attempts and the result reports failure without error.
func TestDecodeUplinkWithRetryExhaustsBudget(t *testing.T) {
	r := New()
	_, _, bs := makeReply(t, r.SamplesPerHalfBit)
	link := RoundTripGain(r.TxAmplitude, complex(1e-2, 0), complex(0, 1e-2))
	fault := scriptedFault{{1, 0}: true, {1, 1}: true, {1, 2}: true}
	res, err := r.DecodeUplinkWithRetry(1, 2, fault, bs, link, nil, 16, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded() {
		t.Fatal("succeeded through an all-corrupted schedule")
	}
	if len(res.Attempts) != 3 {
		t.Fatalf("%d attempts, want 3 (1 + 2 retries)", len(res.Attempts))
	}
	for i, a := range res.Attempts {
		if a != AttemptCorrupted {
			t.Fatalf("attempt %d = %s, want corrupted", i, a)
		}
	}
}

// TestDecodeUplinkWithRetryNilFault: a nil fault with a clean link is one
// attempt, one AttemptOK — no fault layer, no retries burned.
func TestDecodeUplinkWithRetryNilFault(t *testing.T) {
	r := New()
	_, _, bs := makeReply(t, r.SamplesPerHalfBit)
	link := RoundTripGain(r.TxAmplitude, complex(1e-2, 0), complex(0, 1e-2))
	res, err := r.DecodeUplinkWithRetry(0, 3, nil, bs, link, nil, 16, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded() || len(res.Attempts) != 1 || res.Attempts[0] != AttemptOK {
		t.Fatalf("clean decode accounting wrong: %v", res.Attempts)
	}
	if _, err := r.DecodeUplinkWithRetry(0, -1, nil, bs, link, nil, 16, rng.New(8)); err == nil {
		t.Fatal("negative retry budget accepted")
	}
}

// TestDecodeUplinkWithRetryFailedAttemptsCounted: a hopeless link burns
// the whole budget as decode failures (distinct from fault corruption).
func TestDecodeUplinkWithRetryFailedAttemptsCounted(t *testing.T) {
	r := New()
	_, _, bs := makeReply(t, r.SamplesPerHalfBit)
	res, err := r.DecodeUplinkWithRetry(3, 1, nil, bs, complex(1e-9, 0), nil, 16, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded() {
		t.Fatal("decoded a hopeless link")
	}
	for i, a := range res.Attempts {
		if a != AttemptDecodeFailed {
			t.Fatalf("attempt %d = %s, want decode-failed", i, a)
		}
	}
	if len(res.Attempts) != 2 {
		t.Fatalf("%d attempts, want 2", len(res.Attempts))
	}
}
