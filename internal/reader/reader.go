// Package reader implements IVN's out-of-band reader (paper §4, §5b): a
// transmit/receive pair at a carrier (880 MHz) different from the CIB
// beamformer's (915 MHz), time-synchronized with it.
//
// Backscatter modulation is frequency-agnostic: once CIB has powered the
// tag up, the tag's impedance switching modulates *every* illuminating
// carrier, including the reader's. The reader therefore decodes the tag
// on its own carrier, where a SAW pre-filter removes the CIB self-jamming
// that would otherwise saturate the receive chain. To survive deep-tissue
// attenuation it coherently averages captures across 1-second CIB
// envelope periods before FM0 correlation decoding, declaring success at
// preamble correlation > 0.8 (the paper's §6.2 criterion).
package reader

import (
	"fmt"
	"math"
	"math/cmplx"

	"ivn/internal/dsp"
	"ivn/internal/gen2"
	"ivn/internal/radio"
	"ivn/internal/rng"
)

// Reader is the out-of-band transmit/receive pair.
type Reader struct {
	// TxFreq is the reader's carrier (the prototype uses 880 MHz).
	TxFreq float64 //ivn:unit Hz
	// TxAmplitude is the emitted amplitude in √W.
	TxAmplitude float64 //ivn:unit sqrtW
	// RX is the receive chain (SAW filter, saturation, noise floor),
	// centered at TxFreq.
	RX *radio.Receiver
	// SamplesPerHalfBit is the FM0 resolution of uplink captures.
	SamplesPerHalfBit int
	// AveragingPeriods is the number of 1 s CIB envelope periods combined
	// coherently (K).
	AveragingPeriods int
	// CorrelationThreshold is the decode acceptance level (0 → 0.8).
	CorrelationThreshold float64
	// Miller selects the uplink decoding: 0 = FM0, else the Miller
	// subcarrier factor (2/4/8), matching the Query's M field.
	Miller int
	// PhaseDriftPerPeriod is the oscillator phase random-walk variance
	// accumulated per averaging period, rad². Zero models the prototype's
	// shared Octoclock reference (TX and RX phase-locked across seconds);
	// a free-running link drifts and erodes the coherent-averaging gain
	// (see CoherentAveragingGain).
	PhaseDriftPerPeriod float64
}

// CoherentAveragingGain returns E|1/K·Σₖ e^{jφₖ}|² for a phase random
// walk with per-period variance sigma2: the fraction of the ideal
// K-period coherent gain that survives oscillator drift. With sigma2 = 0
// it is 1 (full coherence); as drift grows the stacked replies decorrelate
// and the value approaches 1/K (non-coherent averaging).
func CoherentAveragingGain(k int, sigma2 float64) float64 {
	if k < 1 {
		return 0
	}
	if sigma2 <= 0 {
		return 1
	}
	// E[e^{j(φₖ−φₗ)}] = e^{−σ²|k−l|/2} for a Wiener phase.
	var acc float64
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			d := a - b
			if d < 0 {
				d = -d
			}
			acc += math.Exp(-sigma2 * float64(d) / 2)
		}
	}
	return acc / float64(k*k)
}

// Operating-point defaults, applied wherever the corresponding field is
// zero: a zero-value Reader decodes at the prototype's configuration
// (880 MHz, 1 W, 8 samples per half-bit, 32-period averaging, 0.8
// correlation threshold). Every decode path resolves through the same
// accessors, so FM0 and Miller can never disagree about what zero means.
const (
	DefaultTxFreq               = 880e6
	DefaultTxAmplitude          = 1.0
	DefaultSamplesPerHalfBit    = 8
	DefaultAveragingPeriods     = 32
	DefaultCorrelationThreshold = 0.8
)

// New builds a reader at the prototype's operating point: 880 MHz, 30 dBm
// (1 W) transmit, 8 samples per half-bit, 32-period averaging (the paper
// averages tag responses over 1-second CIB envelope periods, §5b; the
// capture length is a free parameter of the protocol).
func New() *Reader {
	return &Reader{
		TxFreq:               DefaultTxFreq,
		TxAmplitude:          DefaultTxAmplitude,
		RX:                   radio.NewReceiver(DefaultTxFreq),
		SamplesPerHalfBit:    DefaultSamplesPerHalfBit,
		AveragingPeriods:     DefaultAveragingPeriods,
		CorrelationThreshold: DefaultCorrelationThreshold,
	}
}

// txFreq resolves the carrier, defaulting the zero value.
func (r *Reader) txFreq() float64 {
	if r.TxFreq == 0 {
		return DefaultTxFreq
	}
	return r.TxFreq
}

// txAmplitude resolves the transmit amplitude, defaulting the zero value.
func (r *Reader) txAmplitude() float64 {
	if r.TxAmplitude == 0 {
		return DefaultTxAmplitude
	}
	return r.TxAmplitude
}

// rx resolves the receive chain, building the default receiver (centered
// at the resolved carrier) when none is configured.
func (r *Reader) rx() *radio.Receiver {
	if r.RX == nil {
		return radio.NewReceiver(r.txFreq())
	}
	return r.RX
}

// samplesPerHalfBit resolves the FM0 half-bit resolution.
func (r *Reader) samplesPerHalfBit() int {
	if r.SamplesPerHalfBit == 0 {
		return DefaultSamplesPerHalfBit
	}
	return r.SamplesPerHalfBit
}

// averagingPeriods resolves the coherent-averaging depth K.
func (r *Reader) averagingPeriods() int {
	if r.AveragingPeriods == 0 {
		return DefaultAveragingPeriods
	}
	return r.AveragingPeriods
}

// correlationThreshold resolves the decode acceptance level.
func (r *Reader) correlationThreshold() float64 {
	if r.CorrelationThreshold == 0 {
		return DefaultCorrelationThreshold
	}
	return r.CorrelationThreshold
}

// Validate checks the configuration. Zero values are valid — they select
// the documented defaults — so only genuinely meaningless settings
// (negative counts, negative frequencies) are rejected.
func (r *Reader) Validate() error {
	if r.TxFreq < 0 {
		return fmt.Errorf("reader: TX frequency %v < 0", r.TxFreq)
	}
	if r.TxAmplitude < 0 {
		return fmt.Errorf("reader: TX amplitude %v < 0", r.TxAmplitude)
	}
	if r.SamplesPerHalfBit < 0 {
		return fmt.Errorf("reader: %d samples per half-bit", r.SamplesPerHalfBit)
	}
	if r.AveragingPeriods < 0 {
		return fmt.Errorf("reader: %d averaging periods", r.AveragingPeriods)
	}
	if r.CorrelationThreshold < 0 || r.CorrelationThreshold > 1 {
		return fmt.Errorf("reader: correlation threshold %v outside [0,1]", r.CorrelationThreshold)
	}
	return nil
}

// Jammed reports whether the CIB transmitters saturate the receive chain
// despite the SAW filter. leakPower is the total CIB power reaching the
// reader antenna (watts) at cibFreq.
//
//ivn:unit leakPower W
//ivn:unit cibFreq Hz
func (r *Reader) Jammed(leakPower, cibFreq float64) bool {
	return r.rx().Saturated([]radio.ToneAt{{Freq: cibFreq, Power: leakPower}})
}

// DecodeResult is a successful uplink decode.
type DecodeResult struct {
	// Bits is the recovered payload.
	Bits gen2.Bits
	// Correlation is the preamble correlation after averaging.
	Correlation float64
	// SNRdB is the post-averaging per-sample SNR estimate used.
	SNRdB float64 //ivn:unit dB
}

// DecodeUplink demodulates a backscatter reply. bs is the tag's
// modulation waveform (reflection amplitude factors at SamplesPerHalfBit
// resolution); linkGain is the round-trip complex gain reader→tag→reader
// at the reader's carrier, including the tag's incident amplitude; jamPowers
// lists interfering tones at the reader antenna. The reader synthesizes
// AveragingPeriods noisy captures, combines them coherently, removes the
// carrier DC, and runs the FM0 correlation decoder for nbits of payload.
func (r *Reader) DecodeUplink(bs []float64, linkGain complex128, jamPowers []radio.ToneAt, nbits int, rnd *rng.Rand) (*DecodeResult, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if len(bs) == 0 {
		return nil, fmt.Errorf("reader: empty backscatter waveform")
	}
	rx := r.rx()
	if rx.Saturated(jamPowers) {
		return nil, fmt.Errorf("reader: receiver saturated by %d jamming tones (%.1f dBm post-filter)",
			len(jamPowers), 10*math.Log10(rx.PostFilterPower(jamPowers))+30)
	}
	// Residual interference (after analog and digital filtering) raises
	// the effective noise floor.
	noise := rx.NoiseFloor + rx.EffectiveInterference(jamPowers)
	// Coherent averaging of K periods: signal stays, noise power drops K×.
	// Oscillator drift between periods decorrelates the stacked replies
	// and attenuates the combined signal amplitude.
	periods := r.averagingPeriods()
	k := float64(periods)
	drift := math.Sqrt(CoherentAveragingGain(periods, r.PhaseDriftPerPeriod))
	effLink := linkGain * complex(drift, 0)
	sigma := math.Sqrt(noise / 2 / k)
	avg := make([]complex128, len(bs))
	for i, v := range bs {
		avg[i] = complex(v, 0)*effLink + rnd.ComplexCircular(sigma)
	}
	// Derotate by the (estimated) link phase and take the real part. A
	// real reader estimates this from the carrier; we use the true value,
	// which the DC of the capture would supply.
	ph := cmplx.Phase(effLink)
	rot := cmplx.Exp(complex(0, -ph))
	levels := make([]float64, len(avg))
	for i, v := range avg {
		levels[i] = real(v * rot)
	}
	// AC-couple: backscatter rides on a DC reflection level.
	mean := dsp.Mean(levels)
	for i := range levels {
		levels[i] -= mean
	}
	th := r.correlationThreshold()
	sphb := r.samplesPerHalfBit()
	var res *gen2.FrameResult
	var err error
	if r.Miller != 0 {
		// One subcarrier cycle per FM0 bit time (see tag.BackscatterWaveform).
		dec := gen2.MillerDecoder{M: r.Miller, SamplesPerCycle: 2 * sphb}
		res, err = dec.DecodeFrame(levels, nbits, th)
	} else {
		dec := gen2.FM0Decoder{SamplesPerHalfBit: sphb, CorrelationThreshold: th}
		res, err = dec.DecodeFrame(levels, nbits)
	}
	if err != nil {
		return nil, err
	}
	sig := cmplx.Abs(effLink)
	snr := math.Inf(1)
	if noise > 0 {
		snr = 10 * math.Log10(sig*sig*k/noise)
	}
	return &DecodeResult{Bits: res.Payload, Correlation: res.Correlation, SNRdB: snr}, nil
}

// ModulationAmplitude returns the AC half-swing a tag's backscatter
// imposes on an illuminating carrier: the modulator toggles the
// reflection amplitude between gain·(1−depth) and gain, so the
// information-bearing component has amplitude gain·depth/2.
func ModulationAmplitude(backscatterGain, depth float64) float64 {
	return backscatterGain * depth / 2
}

// DecodableRN16 is the fast link-budget predicate the range sweeps use:
// it reports whether an RN16 decode is expected to succeed given the
// round-trip link gain (reader TX → tag → reader RX, excluding the tag's
// modulation), the tag's modulation amplitude, jamming, and averaging —
// without synthesizing waveforms. The threshold is the post-averaging
// per-sample amplitude SNR at which the 12-half-bit FM0 preamble
// correlation clears 0.8 (amplitude ratio ≈1.33, i.e. ≈2.5 dB power),
// plus margin; it is validated against DecodeUplink in the tests.
func (r *Reader) DecodableRN16(linkGain complex128, modulationAmp float64, jamPowers []radio.ToneAt) bool {
	snr, _ := r.EventBudget(linkGain, modulationAmp, jamPowers)
	if snr <= 0 {
		return false
	}
	const minSNRdB = 4.5 // ρ=0.8 point (≈2.5 dB) plus 2 dB margin
	return 10*math.Log10(snr) >= minSNRdB
}

// EventBudget reduces a tag's link budget to the two scalars the
// event-level channel (ivn/internal/session.EventChannel) needs: the
// post-averaging per-sample power SNR (linear — the same operand
// DecodableRN16 thresholds and DecodeUplink reports as SNRdB) and the
// received backscatter signal power (relative units; only ratios between
// tags matter, for the capture-effect dominance test). A saturated
// receiver returns (0, 0): nothing decodes. A noiseless receiver with
// signal returns snr = +Inf.
func (r *Reader) EventBudget(linkGain complex128, modulationAmp float64, jamPowers []radio.ToneAt) (snr, rssi float64) {
	rx := r.rx()
	if rx.Saturated(jamPowers) {
		return 0, 0
	}
	noise := rx.NoiseFloor + rx.EffectiveInterference(jamPowers)
	periods := r.averagingPeriods()
	a := cmplx.Abs(linkGain) * modulationAmp *
		math.Sqrt(CoherentAveragingGain(periods, r.PhaseDriftPerPeriod))
	if a == 0 {
		return 0, 0
	}
	return a * a * float64(periods) / noise, a * a
}

// RoundTripGain composes the reader's link: its own transmit amplitude,
// the downlink channel to the tag at the reader carrier, and the uplink
// channel back. The tag's backscatter gain and modulation depth live in
// the modulation waveform (Tag.BackscatterWaveform), not here.
func RoundTripGain(txAmplitude float64, down, up complex128) complex128 {
	return complex(txAmplitude, 0) * down * up
}
