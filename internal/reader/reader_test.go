package reader

import (
	"math"
	"math/cmplx"
	"testing"

	"ivn/internal/gen2"
	"ivn/internal/radio"
	"ivn/internal/rng"
	"ivn/internal/tag"
)

// makeReply builds a powered tag's RN16 backscatter waveform.
func makeReply(t *testing.T, sp int) (*tag.Tag, gen2.Reply, []float64) {
	t.Helper()
	tg, err := tag.New(tag.StandardTag(), []byte{0x12, 0x34}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tg.UpdatePower(tg.Model.MinPeakPower() * 2)
	reply := tg.HandleCommand(&gen2.Query{Q: 0})
	if reply.Kind != gen2.ReplyRN16 {
		t.Fatalf("reply = %s", reply.Kind)
	}
	bs, err := tg.BackscatterWaveform(reply, sp)
	if err != nil {
		t.Fatal(err)
	}
	return tg, reply, bs
}

func TestValidate(t *testing.T) {
	if err := New().Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero values mean "use the default" and must validate; only
	// meaningless negative settings are rejected.
	zeros := []func(*Reader){
		func(r *Reader) { r.TxFreq = 0 },
		func(r *Reader) { r.TxAmplitude = 0 },
		func(r *Reader) { r.RX = nil },
		func(r *Reader) { r.SamplesPerHalfBit = 0 },
		func(r *Reader) { r.AveragingPeriods = 0 },
		func(r *Reader) { r.CorrelationThreshold = 0 },
	}
	for i, mutate := range zeros {
		r := New()
		mutate(r)
		if err := r.Validate(); err != nil {
			t.Errorf("zero mutation %d rejected: %v", i, err)
		}
	}
	mutations := []func(*Reader){
		func(r *Reader) { r.TxFreq = -880e6 },
		func(r *Reader) { r.TxAmplitude = -1 },
		func(r *Reader) { r.SamplesPerHalfBit = -8 },
		func(r *Reader) { r.AveragingPeriods = -32 },
		func(r *Reader) { r.CorrelationThreshold = -0.5 },
		func(r *Reader) { r.CorrelationThreshold = 1.5 },
	}
	for i, mutate := range mutations {
		r := New()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDecodeUplinkCleanLink(t *testing.T) {
	r := New()
	_, reply, bs := makeReply(t, r.SamplesPerHalfBit)
	link := RoundTripGain(r.TxAmplitude, complex(1e-2, 0), complex(0, 1e-2))
	res, err := r.DecodeUplink(bs, link, nil, 16, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bits.Equal(reply.Bits) {
		t.Fatalf("decoded %s, want %s", res.Bits, reply.Bits)
	}
	if res.Correlation < 0.9 {
		t.Fatalf("clean-link correlation %v", res.Correlation)
	}
}

func TestDecodeUplinkFailsWhenWeak(t *testing.T) {
	r := New()
	_, _, bs := makeReply(t, r.SamplesPerHalfBit)
	// Link gain so small the signal drowns below the noise floor.
	link := complex(1e-9, 0)
	if _, err := r.DecodeUplink(bs, link, nil, 16, rng.New(3)); err == nil {
		t.Fatal("decoded a hopeless link")
	}
}

func TestAveragingRescuesWeakLink(t *testing.T) {
	// The §5b mechanism: a link that fails with K=1 succeeds with enough
	// coherent averaging.
	base := New()
	_, reply, bs := makeReply(t, base.SamplesPerHalfBit)
	// |link|·modAmp = 2.5e-6·0.132 ≈ 3.3e-7 against a per-capture noise
	// σ = 7.07e-7: hopeless at K=1, comfortable at K=64.
	link := complex(2.5e-6, 0)
	single := New()
	single.AveragingPeriods = 1
	failures := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		if _, err := single.DecodeUplink(bs, link, nil, 16, rng.New(uint64(10+i))); err != nil {
			failures++
		}
	}
	if failures < trials/2 {
		t.Fatalf("single-capture decode failed only %d/%d; link too strong for this test", failures, trials)
	}
	many := New()
	many.AveragingPeriods = 64
	ok := 0
	for i := 0; i < trials; i++ {
		res, err := many.DecodeUplink(bs, link, nil, 16, rng.New(uint64(10+i)))
		if err == nil && res.Bits.Equal(reply.Bits) {
			ok++
		}
	}
	if ok < trials*8/10 {
		t.Fatalf("64-period averaging decoded only %d/%d", ok, trials)
	}
}

func TestJammingSaturatesWithoutFilterHeadroom(t *testing.T) {
	r := New()
	_, _, bs := makeReply(t, r.SamplesPerHalfBit)
	link := complex(3e-3, 0)
	// 10 dBm of CIB leakage at the reader antenna: post-SAW ≈ −37 dBm,
	// below the −20 dBm saturation → fine. 40 dBm would saturate.
	okJam := []radio.ToneAt{{Freq: 915e6, Power: 1e-2}}
	if _, err := r.DecodeUplink(bs, link, okJam, 16, rng.New(5)); err != nil {
		t.Fatalf("moderate filtered jam broke decode: %v", err)
	}
	hardJam := []radio.ToneAt{{Freq: 915e6, Power: 1e4}}
	if _, err := r.DecodeUplink(bs, link, hardJam, 16, rng.New(5)); err == nil {
		t.Fatal("saturating jam decoded anyway")
	}
	if !r.Jammed(1e4, 915e6) {
		t.Fatal("Jammed() disagrees with saturation")
	}
	if r.Jammed(1e-2, 915e6) {
		t.Fatal("Jammed() reports saturation for filtered leak")
	}
}

func TestInBandReaderWouldBeJammed(t *testing.T) {
	// The §4 motivation: the same reader moved in-band (915 MHz center,
	// filter passes the jam) saturates at realistic leak power.
	inBand := New()
	inBand.TxFreq = 915e6
	inBand.RX = radio.NewReceiver(915e6)
	if !inBand.Jammed(1e-3, 915e6) {
		t.Fatal("in-band receiver survived 0 dBm CIB leak")
	}
	outBand := New()
	if outBand.Jammed(1e-3, 915e6) {
		t.Fatal("out-of-band receiver saturated at 0 dBm leak")
	}
}

func TestDecodableRN16BudgetConsistent(t *testing.T) {
	// The fast predicate must agree with the waveform decoder near the
	// operating point: where the budget says yes, decoding succeeds most
	// of the time, and vice versa well away from the edge.
	r := New()
	_, reply, bs := makeReply(t, r.SamplesPerHalfBit)
	modAmp := ModulationAmplitude(0.33, 0.8)
	strong := complex(1e-4, 0)
	weak := complex(1e-8, 0)
	if !r.DecodableRN16(strong, modAmp, nil) {
		t.Fatal("budget rejects a strong link")
	}
	if r.DecodableRN16(weak, modAmp, nil) {
		t.Fatal("budget accepts a hopeless link")
	}
	res, err := r.DecodeUplink(bs, strong, nil, 16, rng.New(8))
	if err != nil || !res.Bits.Equal(reply.Bits) {
		t.Fatalf("waveform decode disagrees with budget on strong link: %v", err)
	}
	if r.DecodableRN16(0, modAmp, nil) {
		t.Fatal("zero link decodable")
	}
	// Budget-vs-waveform agreement across a sweep around the threshold:
	// wherever the budget says yes, the waveform decoder must succeed in
	// the large majority of noise draws.
	for _, mag := range []float64{1e-6, 2e-6, 4e-6, 8e-6, 1.6e-5} {
		link := complex(mag, 0)
		if !r.DecodableRN16(link, modAmp, nil) {
			continue
		}
		ok := 0
		for i := 0; i < 10; i++ {
			if res, err := r.DecodeUplink(bs, link, nil, 16, rng.New(uint64(100+i))); err == nil && res.Bits.Equal(reply.Bits) {
				ok++
			}
		}
		if ok < 8 {
			t.Fatalf("budget approves |link|=%v but waveform decodes only %d/10", mag, ok)
		}
	}
}

func TestDecodeUplinkComplexLinkPhase(t *testing.T) {
	// The link phase is arbitrary (unknown channel); derotation must make
	// decoding phase-invariant.
	r := New()
	_, reply, bs := makeReply(t, r.SamplesPerHalfBit)
	for _, ph := range []float64{0.3, 1.7, 3.0, 5.1} {
		link := cmplx.Rect(1e-3, ph)
		res, err := r.DecodeUplink(bs, link, nil, 16, rng.New(9))
		if err != nil {
			t.Fatalf("phase %v: %v", ph, err)
		}
		if !res.Bits.Equal(reply.Bits) {
			t.Fatalf("phase %v: wrong bits", ph)
		}
	}
}

func TestDecodeUplinkErrors(t *testing.T) {
	r := New()
	if _, err := r.DecodeUplink(nil, 1, nil, 16, rng.New(1)); err == nil {
		t.Fatal("empty waveform accepted")
	}
	bad := New()
	bad.AveragingPeriods = -1
	if _, err := bad.DecodeUplink([]float64{1}, 1, nil, 16, rng.New(1)); err == nil {
		t.Fatal("invalid reader decoded")
	}
}

func TestRoundTripGainComposition(t *testing.T) {
	g := RoundTripGain(2, complex(0, 0.1), complex(0.1, 0))
	want := complex(2, 0) * complex(0, 0.1) * complex(0.1, 0)
	if cmplx.Abs(g-want) > 1e-15 {
		t.Fatalf("round trip = %v, want %v", g, want)
	}
	if math.Abs(cmplx.Abs(g)-0.02) > 1e-12 {
		t.Fatalf("|g| = %v", cmplx.Abs(g))
	}
	if got := ModulationAmplitude(0.33, 0.8); math.Abs(got-0.132) > 1e-12 {
		t.Fatalf("modulation amplitude = %v", got)
	}
}

func BenchmarkDecodeUplink(b *testing.B) {
	r := New()
	tg, _ := tag.New(tag.StandardTag(), []byte{0x12, 0x34}, rng.New(1))
	tg.UpdatePower(tg.Model.MinPeakPower() * 2)
	reply := tg.HandleCommand(&gen2.Query{Q: 0})
	bs, _ := tg.BackscatterWaveform(reply, r.SamplesPerHalfBit)
	link := complex(1e-4, 0)
	rnd := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.DecodeUplink(bs, link, nil, 16, rnd); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCoherentAveragingGainProperties(t *testing.T) {
	// No drift: full coherence regardless of K.
	for _, k := range []int{1, 4, 32} {
		if g := CoherentAveragingGain(k, 0); g != 1 {
			t.Fatalf("K=%d no-drift gain %v, want 1", k, g)
		}
	}
	// Monotone decreasing in drift.
	prev := 1.0
	for _, s2 := range []float64{0.01, 0.1, 0.5, 2, 10} {
		g := CoherentAveragingGain(16, s2)
		if g >= prev {
			t.Fatalf("gain not decreasing at σ²=%v: %v >= %v", s2, g, prev)
		}
		if g < 1.0/16-1e-9 {
			t.Fatalf("gain %v fell below the non-coherent floor 1/K", g)
		}
		prev = g
	}
	// Heavy drift approaches the 1/K non-coherent floor.
	if g := CoherentAveragingGain(16, 100); g > 1.2/16 {
		t.Fatalf("heavy-drift gain %v, want ≈1/16", g)
	}
	if CoherentAveragingGain(0, 1) != 0 {
		t.Fatal("K=0 gain != 0")
	}
}

func TestPhaseDriftErodesWeakLinkDecoding(t *testing.T) {
	// The same marginal link that 64-period averaging rescues with a
	// shared reference fails when the oscillators free-run.
	_, reply, bs := makeReply(t, New().SamplesPerHalfBit)
	link := complex(2.5e-6, 0)
	locked := New()
	locked.AveragingPeriods = 64
	drifting := New()
	drifting.AveragingPeriods = 64
	drifting.PhaseDriftPerPeriod = 2.0 // rad²/period: free-running TCXO-class

	okLocked, okDrifting := 0, 0
	const trials = 10
	for i := 0; i < trials; i++ {
		if res, err := locked.DecodeUplink(bs, link, nil, 16, rng.New(uint64(40+i))); err == nil && res.Bits.Equal(reply.Bits) {
			okLocked++
		}
		if res, err := drifting.DecodeUplink(bs, link, nil, 16, rng.New(uint64(40+i))); err == nil && res.Bits.Equal(reply.Bits) {
			okDrifting++
		}
	}
	if okLocked < trials*8/10 {
		t.Fatalf("locked reference decoded only %d/%d", okLocked, trials)
	}
	if okDrifting > okLocked/2 {
		t.Fatalf("free-running decoded %d/%d vs locked %d/%d; drift model inert", okDrifting, trials, okLocked, trials)
	}
	// The budget predicate agrees.
	modAmp := ModulationAmplitude(0.33, 0.8)
	if !locked.DecodableRN16(link, modAmp, nil) {
		t.Fatal("budget rejects the locked link")
	}
	if drifting.DecodableRN16(link, modAmp, nil) {
		t.Fatal("budget accepts the drifting link")
	}
}

func TestMillerUplinkEndToEnd(t *testing.T) {
	// A Query with M=1 (Miller-2) switches the whole uplink chain: the tag
	// modulates Miller, the reader decodes Miller.
	for _, mField := range []byte{1, 2, 3} {
		m := 2 << (mField - 1) // 2, 4, 8
		tg, err := tag.New(tag.StandardTag(), []byte{0x12, 0x34}, rng.New(uint64(60+mField)))
		if err != nil {
			t.Fatal(err)
		}
		tg.UpdatePower(tg.Model.MinPeakPower() * 2)
		reply := tg.HandleCommand(&gen2.Query{Q: 0, M: mField})
		if reply.Kind != gen2.ReplyRN16 {
			t.Fatalf("M=%d: reply %s", m, reply.Kind)
		}
		if tg.Logic.Miller() != m {
			t.Fatalf("tag encoding %d, want %d", tg.Logic.Miller(), m)
		}
		r := New()
		r.Miller = m
		bs, err := tg.BackscatterWaveform(reply, r.SamplesPerHalfBit)
		if err != nil {
			t.Fatal(err)
		}
		link := complex(1e-3, 0)
		res, err := r.DecodeUplink(bs, link, nil, 16, rng.New(uint64(70+mField)))
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		if !res.Bits.Equal(reply.Bits) {
			t.Fatalf("M=%d: decoded %s, want %s", m, res.Bits, reply.Bits)
		}
	}
}

func TestMillerDecoderRejectsFM0Waveform(t *testing.T) {
	// Cross-decoding must fail loudly, not silently return wrong bits.
	tg, err := tag.New(tag.StandardTag(), []byte{0x12, 0x34}, rng.New(80))
	if err != nil {
		t.Fatal(err)
	}
	tg.UpdatePower(tg.Model.MinPeakPower() * 2)
	reply := tg.HandleCommand(&gen2.Query{Q: 0}) // FM0 round
	r := New()
	r.Miller = 4
	bs, err := tg.BackscatterWaveform(reply, r.SamplesPerHalfBit)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.DecodeUplink(bs, complex(1e-3, 0), nil, 16, rng.New(81))
	if err == nil && res.Bits.Equal(reply.Bits) {
		t.Fatal("Miller reader decoded an FM0 waveform correctly; cross-check broken")
	}
}
