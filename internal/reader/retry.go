package reader

import (
	"fmt"

	"ivn/internal/radio"
	"ivn/internal/rng"
)

// DecodeFault corrupts uplink captures at the reader — the injection seam
// for CIB-PLL-relock-mid-capture faults that break coherent averaging.
// Implementations must be pure functions of the exchange/attempt
// coordinates and their own state (see ivn/internal/fault). A nil
// DecodeFault is a clean capture chain.
type DecodeFault interface {
	// CaptureCorrupted reports whether decode attempt `attempt` of
	// exchange `exchange` observes an unusable capture.
	CaptureCorrupted(exchange, attempt int) bool
}

// AttemptOutcome classifies one decode attempt of a retried exchange.
type AttemptOutcome int

// Attempt outcomes.
const (
	// AttemptOK: the capture decoded above threshold.
	AttemptOK AttemptOutcome = iota
	// AttemptCorrupted: the fault layer destroyed the capture before
	// decoding (e.g. a PLL re-lock mid-capture).
	AttemptCorrupted
	// AttemptDecodeFailed: the capture was intact but the decoder could
	// not clear the correlation threshold (noise, interference).
	AttemptDecodeFailed
)

// String names the outcome.
func (o AttemptOutcome) String() string {
	switch o {
	case AttemptOK:
		return "ok"
	case AttemptCorrupted:
		return "corrupted"
	case AttemptDecodeFailed:
		return "decode-failed"
	default:
		return fmt.Sprintf("AttemptOutcome(%d)", int(o))
	}
}

// RetryResult is the accounting of a retried uplink decode: the final
// result (nil when every attempt failed) plus the per-attempt outcomes in
// order, so experiments can separate fault-induced losses from
// noise-induced ones and charge each retry to the link budget.
type RetryResult struct {
	// Result is the successful decode, nil when the budget was exhausted.
	Result *DecodeResult
	// Attempts records each attempt's outcome in order; the last entry is
	// AttemptOK exactly when Result is non-nil.
	Attempts []AttemptOutcome
}

// Succeeded reports whether any attempt decoded.
func (r *RetryResult) Succeeded() bool { return r.Result != nil }

// DecodeUplinkWithRetry runs DecodeUplink with a bounded retry budget:
// up to 1+retries attempts, each with an independent noise realization
// (a real reader re-captures the backscatter on retry — the tag holds its
// reply until the next reader command). exchange identifies this decode
// for the fault layer; fault may be nil. retries < 0 is an error, so a
// zero-value budget means exactly one attempt.
func (r *Reader) DecodeUplinkWithRetry(exchange, retries int, fault DecodeFault, bs []float64, linkGain complex128, jamPowers []radio.ToneAt, nbits int, rnd *rng.Rand) (*RetryResult, error) {
	if retries < 0 {
		return nil, fmt.Errorf("reader: retry budget %d < 0", retries)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	out := &RetryResult{}
	for attempt := 0; attempt <= retries; attempt++ {
		if fault != nil && fault.CaptureCorrupted(exchange, attempt) {
			out.Attempts = append(out.Attempts, AttemptCorrupted)
			continue
		}
		res, err := r.DecodeUplink(bs, linkGain, jamPowers, nbits, rnd.Split(fmt.Sprintf("attempt-%d", attempt)))
		if err != nil {
			out.Attempts = append(out.Attempts, AttemptDecodeFailed)
			continue
		}
		out.Attempts = append(out.Attempts, AttemptOK)
		out.Result = res
		return out, nil
	}
	return out, nil
}
