// Command freqopt runs IVN's one-time Monte-Carlo frequency-selection
// optimization (paper §3.6, Eq. 10): it searches for the integer Δf set
// that maximizes the expected CIB peak under the query-flatness
// constraint, and prints the plan alongside the paper's published set.
//
// Usage:
//
//	freqopt -n 10 [-seed 1] [-alpha 0.5] [-dt 800e-6] [-trials 48] [-restarts 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"ivn/internal/core"
	"ivn/internal/rng"
)

func main() {
	var (
		n        = flag.Int("n", 10, "number of carriers (antennas)")
		seed     = flag.Uint64("seed", 1, "random seed")
		alpha    = flag.Float64("alpha", core.DefaultFlatnessAlpha, "envelope fluctuation bound α")
		dt       = flag.Float64("dt", core.DefaultQueryDuration, "command duration Δt in seconds")
		trials   = flag.Int("trials", 0, "Monte-Carlo draws per candidate (0 = default)")
		restarts = flag.Int("restarts", 0, "search restarts (0 = default)")
		steady   = flag.Float64("steady", 0, "when > 0, also optimize the §3.7 steady stage for this threshold fraction ρ")
	)
	flag.Parse()

	cfg := core.DefaultOptimizerConfig()
	cfg.Alpha = *alpha
	cfg.CommandDuration = *dt
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *restarts > 0 {
		cfg.Restarts = *restarts
	}

	limit, err := core.FlatnessLimit(cfg.Alpha, cfg.CommandDuration)
	if err != nil {
		fmt.Fprintf(os.Stderr, "freqopt: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("flatness limit: RMS Δf <= %.1f Hz (α=%.2f, Δt=%.0f µs)\n",
		limit, cfg.Alpha, cfg.CommandDuration*1e6)

	r := rng.New(*seed)
	plan, err := core.Optimize(*n, cfg, r.Split("discovery"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "freqopt: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("discovery plan: %s\n", plan)

	if *steady > 0 {
		sp, err := core.OptimizeConductionAngle(*n, *steady, cfg, r.Split("steady"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "freqopt: %v\n", err)
			os.Exit(1)
		}
		dwell := core.ExpectedDwellTime(sp.Offsets, *steady*float64(*n), 60, 8192, rng.New(*seed+1))
		fmt.Printf("steady plan (ρ=%.2f): offsets %v, E[dwell] %.2f ms\n", *steady, sp.Offsets, dwell*1e3)
	}

	paper := core.PaperOffsets()
	if *n <= len(paper) {
		p := paper[:*n]
		score := core.ExpectedPeak(p, cfg.Trials, cfg.SamplesPerTrial, rng.New(*seed+2))
		fmt.Printf("paper plan %v: E[peak]/N = %.3f, RMS = %.1f Hz\n",
			p, score/float64(*n), core.RMSOffset(p))
	}
	if bk, err := core.BestKnownPlan(*n); err == nil {
		score := core.ExpectedPeak(bk, cfg.Trials, cfg.SamplesPerTrial, rng.New(*seed+3))
		fmt.Printf("best-known plan %v: E[peak]/N = %.3f, RMS = %.1f Hz\n",
			bk, score/float64(*n), core.RMSOffset(bk))
	}
}
