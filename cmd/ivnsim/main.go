// Command ivnsim runs IVN's evaluation experiments and prints the rows of
// the corresponding paper figure or table.
//
// Usage:
//
//	ivnsim -list
//	ivnsim -run fig9 [-seed 1] [-trials 150] [-csv|-json]
//	ivnsim -run all [-quick] [-parallel 4]
//	ivnsim -run fig12 -trace events.jsonl
//	ivnsim -run fig9 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Sharded execution splits one run's trials across processes (or
// machines sharing a filesystem), each fragment checkpointing to its
// own journal; the merge renders the exact bytes of the unsharded run:
//
//	ivnsim -run fig9 -shard 0/2 -journal frags/fig9.s0.jsonl
//	ivnsim -run fig9 -shard 1/2 -journal frags/fig9.s1.jsonl
//	ivnsim -merge frags -json
//
// A killed run (sharded or not) resumes from its journal, re-executing
// only trials the journal lacks:
//
//	ivnsim -run fig9 -journal fig9.jsonl
//	ivnsim -run fig9 -journal fig9.jsonl -resume
//
// The CLI and the ivnsimd daemon share one run pipeline
// (internal/ivnsim/runspec): each invocation builds a validated RunSpec
// from the flags and executes it exactly the way a daemon job would, so
// the two fronts can never drift apart in what a run means.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ivn/internal/engine"
	"ivn/internal/ivnsim"
	"ivn/internal/ivnsim/runspec"
	"ivn/internal/session"
)

func main() {
	os.Exit(run())
}

// run holds the real main body so deferred profile writers execute before
// the process exits (os.Exit in main would skip them).
func run() int {
	var (
		list        = flag.Bool("list", false, "list available experiments")
		runID       = flag.String("run", "", "experiment id to run, or \"all\"")
		seed        = flag.Uint64("seed", 1, "random seed (equal seeds reproduce identical tables)")
		trials      = flag.Int("trials", 0, "override the experiment's trial count (0 = default)")
		quick       = flag.Bool("quick", false, "reduced workload")
		csv         = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut     = flag.Bool("json", false, "emit JSON (typed cells) instead of aligned text")
		parallel    = flag.Int("parallel", 0, "cap concurrent trial workers (0 = GOMAXPROCS; never changes results)")
		outDir      = flag.String("out", "", "also write each result to DIR/<id>.txt, DIR/<id>.csv and DIR/<id>.json")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to FILE")
		memProfile  = flag.String("memprofile", "", "write a heap profile to FILE on exit")
		faultScales = flag.String("faultscales", "", "comma-separated fault-intensity multiples for faultmatrix (e.g. 0,1,4)")
		traceFile   = flag.String("trace", "", "write the session-layer event stream to FILE as JSON lines")
		shardFlag   = flag.String("shard", "", "execute only fragment I/N of the run's trials (requires -journal; the journal is the output)")
		journalFile = flag.String("journal", "", "checkpoint completed trials to FILE as JSONL")
		resume      = flag.Bool("resume", false, "reload -journal and re-execute only trials it lacks")
		mergeDir    = flag.String("merge", "", "merge the shard journals in DIR into the whole run's table (byte-identical to an unsharded run)")
	)
	flag.Parse()

	if *csv && *jsonOut {
		fmt.Fprintln(os.Stderr, "ivnsim: -csv and -json are mutually exclusive")
		return 2
	}
	shard, err := engine.ParseShard(*shardFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivnsim: -shard: %v\n", err)
		return 2
	}
	if *mergeDir != "" && (*runID != "" || *shardFlag != "" || *journalFile != "" || *resume || *traceFile != "") {
		fmt.Fprintln(os.Stderr, "ivnsim: -merge stands alone (the fragments' journals already pin the run)")
		return 2
	}
	if shard.Enabled() && *journalFile == "" {
		fmt.Fprintln(os.Stderr, "ivnsim: -shard requires -journal (a fragment's output is its journal)")
		return 2
	}
	if *resume && *journalFile == "" {
		fmt.Fprintln(os.Stderr, "ivnsim: -resume requires -journal")
		return 2
	}
	if *journalFile != "" {
		if *runID == "" || *runID == "all" {
			fmt.Fprintln(os.Stderr, "ivnsim: -journal checkpoints a single run: pass one experiment via -run")
			return 2
		}
		if *traceFile != "" {
			fmt.Fprintln(os.Stderr, "ivnsim: -trace cannot be combined with -journal (replayed trials emit no events)")
			return 2
		}
	}
	// The cap is carried per run (engine.Limits), not set process-wide:
	// the CLI is a one-job process, but the shared pipeline keeps the
	// daemon's independent-jobs contract intact.
	lim := engine.Limits{MaxParallel: *parallel}

	scales, err := runspec.ParseScales(*faultScales)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivnsim: -faultscales: %v\n", err)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivnsim: cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ivnsim: cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ivnsim: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ivnsim: memprofile: %v\n", err)
			}
		}()
	}

	render := engine.RenderText
	switch {
	case *csv:
		render = engine.RenderCSV
	case *jsonOut:
		render = engine.RenderJSON
	}

	// One log across every experiment of the invocation: span keys carry
	// the experiment id, and the JSONL form sorts spans, so -run all with
	// -trace is as deterministic as a single experiment.
	var tlog *session.TraceLog
	if *traceFile != "" {
		tlog = session.NewTraceLog()
	}

	// specFor maps the flag set onto the shared RunSpec for one experiment.
	specFor := func(id string) runspec.Spec {
		return runspec.Spec{
			Experiment:  id,
			Seed:        *seed,
			Trials:      *trials,
			Quick:       *quick,
			FaultScales: scales,
			Trace:       *traceFile != "",
		}
	}

	switch {
	case *mergeDir != "":
		if err := runMerge(*mergeDir, lim, *jsonOut, render, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "ivnsim: merge: %v\n", err)
			return 1
		}
		return 0
	case shard.Enabled():
		if *runID == "" || *runID == "all" {
			fmt.Fprintln(os.Stderr, "ivnsim: -shard fragments a single run: pass one experiment via -run")
			return 2
		}
		spec := specFor(*runID)
		spec.Shard = &shard
		spec.Journal = *journalFile
		spec.Resume = *resume
		if err := runFragment(spec, lim); err != nil {
			fmt.Fprintf(os.Stderr, "ivnsim: %s: %v\n", spec.Experiment, err)
			return 1
		}
		return 0
	case *list:
		for _, e := range ivnsim.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
			fmt.Printf("%-20s paper: %s\n", "", e.Paper)
		}
	case *runID == "all":
		for _, e := range ivnsim.Registry() {
			if err := runOne(specFor(e.ID), lim, *jsonOut, render, *outDir, tlog); err != nil {
				fmt.Fprintf(os.Stderr, "ivnsim: %s: %v\n", e.ID, err)
				return 1
			}
		}
	case *runID != "":
		spec := specFor(*runID)
		spec.Journal = *journalFile
		spec.Resume = *resume
		if err := spec.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "ivnsim: %v\n", err)
			return 2
		}
		if err := runOne(spec, lim, *jsonOut, render, *outDir, tlog); err != nil {
			fmt.Fprintf(os.Stderr, "ivnsim: %s: %v\n", spec.Experiment, err)
			return 1
		}
	default:
		flag.Usage()
		return 2
	}

	if *traceFile != "" {
		if err := writeTrace(tlog, *traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "ivnsim: trace: %v\n", err)
			return 1
		}
	}
	return 0
}

// runFragment executes one shard of a run, leaving its journal as the
// product. The stderr summary is the fragment's machine-checkable
// receipt: scripts/shardsmoke parses the recorded/replayed counts.
func runFragment(spec runspec.Spec, lim engine.Limits) error {
	//ivn:allow determinism wall-clock only feeds the stderr elapsed-time diagnostic, never a table
	start := time.Now()
	j, err := runspec.RunFragment(context.Background(), lim, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "(%s shard %s: recorded %d, replayed %d, journal %s, in %v)\n",
		spec.Experiment, spec.Shard, j.Recorded(), j.Replayed(), spec.Journal,
		time.Since(start).Round(time.Millisecond))
	return nil
}

// runMerge recombines a directory of shard journals into the whole
// run's result and renders it exactly as an unsharded invocation would.
func runMerge(dir string, lim engine.Limits, jsonOut bool, render engine.Renderer, outDir string) error {
	//ivn:allow determinism wall-clock only feeds the stderr elapsed-time diagnostic, never a table
	start := time.Now()
	paths, err := runspec.FindFragments(dir)
	if err != nil {
		return err
	}
	res, spec, err := runspec.Merge(context.Background(), lim, paths)
	if err != nil {
		return err
	}
	if err := render(res, os.Stdout); err != nil {
		return err
	}
	if outDir != "" {
		if err := runspec.WriteOutputs(res, outDir); err != nil {
			return err
		}
	}
	// Match runOne's footer placement so output pipelines treat a merged
	// run exactly like a direct one.
	if !jsonOut {
		fmt.Printf("(%s in %v, seed %d)\n\n", spec.Experiment, time.Since(start).Round(time.Millisecond), spec.Seed)
	} else {
		fmt.Fprintf(os.Stderr, "(%s in %v, seed %d)\n", spec.Experiment, time.Since(start).Round(time.Millisecond), spec.Seed)
	}
	return nil
}

// writeTrace serializes the collected event log as JSON lines.
func writeTrace(tlog *session.TraceLog, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tlog.WriteJSONL(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// runOne executes one spec through the shared pipeline, renders it to
// stdout, and fans the result out to -out files. Any per-file write
// failure surfaces with its path and fails the invocation.
func runOne(spec runspec.Spec, lim engine.Limits, jsonOut bool, render engine.Renderer, outDir string, tlog *session.TraceLog) error {
	//ivn:allow determinism wall-clock only feeds the stderr elapsed-time diagnostic, never a table
	start := time.Now()
	res, _, err := runspec.Run(context.Background(), lim, spec, tlog)
	if err != nil {
		return err
	}
	if err := render(res, os.Stdout); err != nil {
		return err
	}
	if outDir != "" {
		if err := runspec.WriteOutputs(res, outDir); err != nil {
			return err
		}
	}
	if !jsonOut {
		fmt.Printf("(%s in %v, seed %d)\n\n", spec.Experiment, time.Since(start).Round(time.Millisecond), spec.Seed)
	} else {
		fmt.Fprintf(os.Stderr, "(%s in %v, seed %d)\n", spec.Experiment, time.Since(start).Round(time.Millisecond), spec.Seed)
	}
	return nil
}
