// Command ivnsim runs IVN's evaluation experiments and prints the rows of
// the corresponding paper figure or table.
//
// Usage:
//
//	ivnsim -list
//	ivnsim -run fig9 [-seed 1] [-trials 150] [-csv]
//	ivnsim -run all [-quick]
//	ivnsim -run fig9 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"ivn/internal/ivnsim"
)

func main() {
	os.Exit(run())
}

// run holds the real main body so deferred profile writers execute before
// the process exits (os.Exit in main would skip them).
func run() int {
	var (
		list        = flag.Bool("list", false, "list available experiments")
		runID       = flag.String("run", "", "experiment id to run, or \"all\"")
		seed        = flag.Uint64("seed", 1, "random seed (equal seeds reproduce identical tables)")
		trials      = flag.Int("trials", 0, "override the experiment's trial count (0 = default)")
		quick       = flag.Bool("quick", false, "reduced workload")
		csv         = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outDir      = flag.String("out", "", "also write each result to DIR/<id>.txt and DIR/<id>.csv")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to FILE")
		memProfile  = flag.String("memprofile", "", "write a heap profile to FILE on exit")
		faultScales = flag.String("faultscales", "", "comma-separated fault-intensity multiples for faultmatrix (e.g. 0,1,4)")
	)
	flag.Parse()

	scales, err := parseScales(*faultScales)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivnsim: -faultscales: %v\n", err)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivnsim: cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ivnsim: cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ivnsim: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ivnsim: memprofile: %v\n", err)
			}
		}()
	}

	switch {
	case *list:
		for _, e := range ivnsim.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
			fmt.Printf("%-20s paper: %s\n", "", e.Paper)
		}
	case *runID == "all":
		for _, e := range ivnsim.Registry() {
			if err := runOne(e, *seed, *trials, *quick, *csv, *outDir, scales); err != nil {
				fmt.Fprintf(os.Stderr, "ivnsim: %s: %v\n", e.ID, err)
				return 1
			}
		}
	case *runID != "":
		e, err := ivnsim.ByID(*runID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivnsim: %v\n", err)
			return 2
		}
		if err := runOne(e, *seed, *trials, *quick, *csv, *outDir, scales); err != nil {
			fmt.Fprintf(os.Stderr, "ivnsim: %s: %v\n", e.ID, err)
			return 1
		}
	default:
		flag.Usage()
		return 2
	}
	return 0
}

// parseScales parses the -faultscales list: comma-separated non-negative
// floats, empty meaning "use the experiment's default sweep".
func parseScales(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad scale %q: %v", p, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("scale %q is negative", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func runOne(e ivnsim.Experiment, seed uint64, trials int, quick, csv bool, outDir string, scales []float64) error {
	cfg := ivnsim.Config{Seed: seed, Trials: trials, Quick: quick, FaultScales: scales}
	//ivn:allow determinism wall-clock only feeds the stderr elapsed-time diagnostic, never a table
	start := time.Now()
	table, err := e.Run(cfg)
	if err != nil {
		return err
	}
	if csv {
		if err := table.RenderCSV(os.Stdout); err != nil {
			return err
		}
	} else {
		if err := table.Render(os.Stdout); err != nil {
			return err
		}
	}
	if outDir != "" {
		if err := writeOutputs(table, outDir); err != nil {
			return err
		}
	}
	fmt.Printf("(%s in %v, seed %d)\n\n", e.ID, time.Since(start).Round(time.Millisecond), seed)
	return nil
}

func writeOutputs(table *ivnsim.Table, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	txt, err := os.Create(filepath.Join(dir, table.ID+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := table.Render(txt); err != nil {
		return err
	}
	csvF, err := os.Create(filepath.Join(dir, table.ID+".csv"))
	if err != nil {
		return err
	}
	defer csvF.Close()
	return table.RenderCSV(csvF)
}
