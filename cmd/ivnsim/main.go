// Command ivnsim runs IVN's evaluation experiments and prints the rows of
// the corresponding paper figure or table.
//
// Usage:
//
//	ivnsim -list
//	ivnsim -run fig9 [-seed 1] [-trials 150] [-csv]
//	ivnsim -run all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ivn/internal/ivnsim"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		run    = flag.String("run", "", "experiment id to run, or \"all\"")
		seed   = flag.Uint64("seed", 1, "random seed (equal seeds reproduce identical tables)")
		trials = flag.Int("trials", 0, "override the experiment's trial count (0 = default)")
		quick  = flag.Bool("quick", false, "reduced workload")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outDir = flag.String("out", "", "also write each result to DIR/<id>.txt and DIR/<id>.csv")
	)
	flag.Parse()

	switch {
	case *list:
		for _, e := range ivnsim.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
			fmt.Printf("%-20s paper: %s\n", "", e.Paper)
		}
	case *run == "all":
		for _, e := range ivnsim.Registry() {
			if err := runOne(e, *seed, *trials, *quick, *csv, *outDir); err != nil {
				fmt.Fprintf(os.Stderr, "ivnsim: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	case *run != "":
		e, err := ivnsim.ByID(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivnsim: %v\n", err)
			os.Exit(2)
		}
		if err := runOne(e, *seed, *trials, *quick, *csv, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "ivnsim: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e ivnsim.Experiment, seed uint64, trials int, quick, csv bool, outDir string) error {
	cfg := ivnsim.Config{Seed: seed, Trials: trials, Quick: quick}
	start := time.Now()
	table, err := e.Run(cfg)
	if err != nil {
		return err
	}
	if csv {
		if err := table.RenderCSV(os.Stdout); err != nil {
			return err
		}
	} else {
		if err := table.Render(os.Stdout); err != nil {
			return err
		}
	}
	if outDir != "" {
		if err := writeOutputs(table, outDir); err != nil {
			return err
		}
	}
	fmt.Printf("(%s in %v, seed %d)\n\n", e.ID, time.Since(start).Round(time.Millisecond), seed)
	return nil
}

func writeOutputs(table *ivnsim.Table, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	txt, err := os.Create(filepath.Join(dir, table.ID+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := table.Render(txt); err != nil {
		return err
	}
	csvF, err := os.Create(filepath.Join(dir, table.ID+".csv"))
	if err != nil {
		return err
	}
	defer csvF.Close()
	return table.RenderCSV(csvF)
}
