package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ivn/internal/ivnsim"
)

func TestRunOneWritesOutputs(t *testing.T) {
	dir := t.TempDir()
	e, err := ivnsim.ByID("fig2")
	if err != nil {
		t.Fatal(err)
	}
	// Silence stdout during the run.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	err = runOne(e, 1, 0, true, false, dir, nil)
	os.Stdout = old
	devnull.Close()
	if err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "fig2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "Diode I-V") {
		t.Fatalf("txt output missing title:\n%s", txt)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "V (V),") {
		t.Fatalf("csv output missing header:\n%s", csv)
	}
}

func TestRunOneCSVToStdout(t *testing.T) {
	e, err := ivnsim.ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := runOne(e, 1, 0, true, true, "", nil)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	out := string(buf[:n])
	if !strings.Contains(out, "distance (cm),air loss (dB)") {
		t.Fatalf("CSV stdout missing header:\n%s", out)
	}
}

func TestWriteOutputsBadDir(t *testing.T) {
	e, err := ivnsim.ByID("fig2")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(ivnsim.Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// A path under an existing *file* cannot be created.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeOutputs(tab, filepath.Join(f, "sub")); err == nil {
		t.Fatal("writeOutputs into a file path succeeded")
	}
}
