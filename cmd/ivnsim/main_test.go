package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ivn/internal/engine"
	"ivn/internal/ivnsim/runspec"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// quickSpec is the CI-sized spec the CLI tests run.
func quickSpec(id string) runspec.Spec {
	return runspec.Spec{Experiment: id, Seed: 1, Quick: true}
}

func TestRunOneWritesOutputs(t *testing.T) {
	dir := t.TempDir()
	// Silence stdout during the run.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	err = runOne(quickSpec("fig2"), engine.Limits{}, false, engine.RenderText, dir, nil)
	os.Stdout = old
	devnull.Close()
	if err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "fig2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "Diode I-V") {
		t.Fatalf("txt output missing title:\n%s", txt)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "V (V),") {
		t.Fatalf("csv output missing header:\n%s", csv)
	}
	// -out also writes the machine-readable result.
	js, err := os.ReadFile(filepath.Join(dir, "fig2.json"))
	if err != nil {
		t.Fatal(err)
	}
	var res engine.Result
	if err := json.Unmarshal(js, &res); err != nil {
		t.Fatalf("fig2.json is not valid JSON: %v", err)
	}
	if res.ID != "fig2" || len(res.Rows) == 0 {
		t.Fatalf("fig2.json incomplete: id %q, %d rows", res.ID, len(res.Rows))
	}
}

func TestRunOneCSVToStdout(t *testing.T) {
	out := captureStdout(t, func() error {
		return runOne(quickSpec("fig3"), engine.Limits{}, false, engine.RenderCSV, "", nil)
	})
	if !strings.Contains(out, "distance (cm),air loss (dB)") {
		t.Fatalf("CSV stdout missing header:\n%s", out)
	}
}

func TestRunOneJSONToStdout(t *testing.T) {
	out := captureStdout(t, func() error {
		return runOne(quickSpec("fig3"), engine.Limits{}, true, engine.RenderJSON, "", nil)
	})
	var res engine.Result
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-json stdout is not one JSON document: %v\n%s", err, out)
	}
	if res.ID != "fig3" {
		t.Fatalf("JSON id %q, want fig3", res.ID)
	}
	// Cells must carry numeric payloads, not formatted strings.
	found := false
	for _, row := range res.Rows {
		for _, c := range row {
			if c.Kind == engine.KindNumber && len(c.Values) == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no numeric cells in JSON output")
	}
}

// TestRunOneBadOutDirFailsWithPath is the -out error contract: a
// per-file write failure must fail the run (non-nil error → non-zero
// exit in main) and name the path it could not write, not vanish into a
// successful-looking invocation.
func TestRunOneBadOutDirFailsWithPath(t *testing.T) {
	// A path under an existing *file* cannot be created — unlike a
	// read-only directory, this fails even when the test runs as root.
	occupied := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	badDir := filepath.Join(occupied, "sub")

	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	err = runOne(quickSpec("fig2"), engine.Limits{}, false, engine.RenderText, badDir, nil)
	os.Stdout = old
	devnull.Close()

	if err == nil {
		t.Fatal("runOne with an unwritable -out dir succeeded")
	}
	if !strings.Contains(err.Error(), badDir) {
		t.Fatalf("error does not name the unwritable path %q: %v", badDir, err)
	}
}
