package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ivn/internal/engine"
	"ivn/internal/ivnsim"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestRunOneWritesOutputs(t *testing.T) {
	dir := t.TempDir()
	e, err := ivnsim.ByID("fig2")
	if err != nil {
		t.Fatal(err)
	}
	// Silence stdout during the run.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	err = runOne(e, 1, 0, true, false, engine.RenderText, dir, nil, nil)
	os.Stdout = old
	devnull.Close()
	if err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "fig2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "Diode I-V") {
		t.Fatalf("txt output missing title:\n%s", txt)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "V (V),") {
		t.Fatalf("csv output missing header:\n%s", csv)
	}
	// -out also writes the machine-readable result.
	js, err := os.ReadFile(filepath.Join(dir, "fig2.json"))
	if err != nil {
		t.Fatal(err)
	}
	var res engine.Result
	if err := json.Unmarshal(js, &res); err != nil {
		t.Fatalf("fig2.json is not valid JSON: %v", err)
	}
	if res.ID != "fig2" || len(res.Rows) == 0 {
		t.Fatalf("fig2.json incomplete: id %q, %d rows", res.ID, len(res.Rows))
	}
}

func TestRunOneCSVToStdout(t *testing.T) {
	e, err := ivnsim.ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return runOne(e, 1, 0, true, false, engine.RenderCSV, "", nil, nil)
	})
	if !strings.Contains(out, "distance (cm),air loss (dB)") {
		t.Fatalf("CSV stdout missing header:\n%s", out)
	}
}

func TestRunOneJSONToStdout(t *testing.T) {
	e, err := ivnsim.ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return runOne(e, 1, 0, true, true, engine.RenderJSON, "", nil, nil)
	})
	var res engine.Result
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-json stdout is not one JSON document: %v\n%s", err, out)
	}
	if res.ID != "fig3" {
		t.Fatalf("JSON id %q, want fig3", res.ID)
	}
	// Cells must carry numeric payloads, not formatted strings.
	found := false
	for _, row := range res.Rows {
		for _, c := range row {
			if c.Kind == engine.KindNumber && len(c.Values) == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no numeric cells in JSON output")
	}
}

func TestWriteOutputsBadDir(t *testing.T) {
	e, err := ivnsim.ByID("fig2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(ivnsim.Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// A path under an existing *file* cannot be created.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeOutputs(res, filepath.Join(f, "sub")); err == nil {
		t.Fatal("writeOutputs into a file path succeeded")
	}
}

func TestParseScales(t *testing.T) {
	got, err := parseScales("0, 1.5 ,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1.5 || got[2] != 4 {
		t.Fatalf("parseScales = %v", got)
	}
	if out, err := parseScales(""); err != nil || out != nil {
		t.Fatalf("empty scales: %v, %v", out, err)
	}
	for _, bad := range []string{"x", "-1", "1,,2"} {
		if _, err := parseScales(bad); err == nil {
			t.Fatalf("parseScales(%q) accepted", bad)
		}
	}
}
