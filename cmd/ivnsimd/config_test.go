package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeConfig drops a config document into a temp file.
func writeConfig(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ivnsimd.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfigDefaults(t *testing.T) {
	c, err := loadConfig("")
	if err != nil {
		t.Fatal(err)
	}
	if c.Addr != defaultAddr {
		t.Fatalf("default addr = %q", c.Addr)
	}
	// Empty document behaves like no document.
	c2, err := loadConfig(writeConfig(t, `{}`))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, c2) {
		t.Fatalf("empty document diverged from defaults: %+v vs %+v", c2, c)
	}
}

func TestLoadConfigParsesAllFields(t *testing.T) {
	path := writeConfig(t, `{
		"addr": "127.0.0.1:0",
		"workers": 3,
		"queue_depth": 9,
		"max_parallel": 2,
		"cache_entries": 5
	}`)
	c, err := loadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Addr != "127.0.0.1:0" || c.Workers != 3 || c.QueueDepth != 9 ||
		c.MaxParallel != 2 || c.CacheEntries != 5 {
		t.Fatalf("parsed %+v", c)
	}
}

func TestLoadConfigRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"worker": 3}`,
		"trailing data":    `{"workers": 3}{"workers": 4}`,
		"negative workers": `{"workers": -1}`,
		"negative queue":   `{"queue_depth": -1}`,
		"wrong type":       `{"workers": "three"}`,
		"not json":         `workers = 3`,
	}
	for name, doc := range cases {
		if _, err := loadConfig(writeConfig(t, doc)); err == nil {
			t.Errorf("%s: accepted %q", name, doc)
		}
	}
	// A missing file is a startup error, not a silent default.
	if _, err := loadConfig(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing config file accepted")
	} else if !strings.Contains(err.Error(), "config") {
		t.Errorf("missing-file error lacks context: %v", err)
	}
}

func TestRestartRequired(t *testing.T) {
	base, err := loadConfig(writeConfig(t, `{"workers": 2, "queue_depth": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	same := base
	if fields := restartRequired(base, same); len(fields) != 0 {
		t.Fatalf("identical configs need restart: %v", fields)
	}
	// Hot-reloadable fields never show up.
	hot := base
	hot.MaxParallel, hot.CacheEntries = 7, 99
	if fields := restartRequired(base, hot); len(fields) != 0 {
		t.Fatalf("hot fields flagged as restart-required: %v", fields)
	}
	cold := base
	cold.Addr, cold.Workers, cold.QueueDepth = "127.0.0.1:1", 5, 99
	fields := restartRequired(base, cold)
	if !reflect.DeepEqual(fields, []string{"addr", "workers", "queue_depth"}) {
		t.Fatalf("restartRequired = %v", fields)
	}
}
