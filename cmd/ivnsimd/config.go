package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"ivn/internal/service"
)

// daemonConfig is the ivnsimd configuration document: the listen
// address plus the service sizing, as one flat JSON object:
//
//	{"addr": "127.0.0.1:8347", "workers": 2, "queue_depth": 16,
//	 "max_parallel": 0, "cache_entries": 64}
//
// Every field is optional; zero values select the defaults below.
type daemonConfig struct {
	// Addr is the listen address. ":0" picks an ephemeral port (the
	// daemon prints the bound address, which is how the smoke test finds
	// it).
	Addr string `json:"addr,omitempty"`
	service.Config
}

// defaultAddr binds loopback only: the daemon has no auth layer.
const defaultAddr = "127.0.0.1:8347"

// withDefaults fills the unset fields. The service.Config defaults are
// applied by service.New; only the daemon-level ones live here.
func (c daemonConfig) withDefaults() daemonConfig {
	if c.Addr == "" {
		c.Addr = defaultAddr
	}
	return c
}

// validate rejects documents that cannot configure a daemon.
func (c daemonConfig) validate() error {
	return c.Config.Validate()
}

// loadConfig reads and validates a config file; an empty path yields
// the defaults. Unknown fields are rejected so a typo ("worker") fails
// startup instead of silently running the default.
func loadConfig(path string) (daemonConfig, error) {
	var c daemonConfig
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return c, fmt.Errorf("config: %w", err)
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&c); err != nil {
			return c, fmt.Errorf("config %s: %w", path, err)
		}
		if dec.More() {
			return c, fmt.Errorf("config %s: trailing data after document", path)
		}
	}
	if err := c.validate(); err != nil {
		return c, fmt.Errorf("config %s: %w", path, err)
	}
	return c.withDefaults(), nil
}

// restartRequired names the fields of next that differ from cur but
// cannot be applied to a live daemon (the hot-reloadable ones —
// max_parallel, cache_entries — are handled by Manager.Reconfigure).
func restartRequired(cur, next daemonConfig) []string {
	var fields []string
	if next.Addr != cur.Addr {
		fields = append(fields, "addr")
	}
	if next.Workers != cur.Workers {
		fields = append(fields, "workers")
	}
	if next.QueueDepth != cur.QueueDepth {
		fields = append(fields, "queue_depth")
	}
	if next.JournalPath != cur.JournalPath {
		// The journal file is opened (and its pending jobs resubmitted)
		// once, at Manager construction.
		fields = append(fields, "journal")
	}
	return fields
}
