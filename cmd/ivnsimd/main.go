// Command ivnsimd serves IVN's evaluation experiments as a long-running
// HTTP service: submit a run, poll its status, fetch the result — byte
// for byte what `ivnsim -json` prints for the same spec — cancel it, or
// hit the cache a previous identical request warmed.
//
// Usage:
//
//	ivnsimd [-config ivnsimd.json] [-addr 127.0.0.1:8347]
//
// Endpoints: POST /v1/runs, GET /v1/runs/{id}[,/result,/trace],
// DELETE /v1/runs/{id}, GET /metrics, GET /healthz.
//
// Signals: SIGHUP re-reads the config file and hot-applies max_parallel
// and cache_entries (addr/workers/queue_depth changes are logged as
// restart-required); SIGINT/SIGTERM drain gracefully — no new
// submissions, queued jobs finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ivn/internal/service"
)

// drainTimeout bounds graceful shutdown; after it, running jobs are
// cancelled through their contexts and the daemon exits anyway.
const drainTimeout = 30 * time.Second

func main() {
	os.Exit(run())
}

func run() int {
	var (
		configPath = flag.String("config", "", "JSON config file (addr, workers, queue_depth, max_parallel, cache_entries)")
		addrFlag   = flag.String("addr", "", "listen address, overrides the config file (\":0\" = ephemeral port)")
	)
	flag.Parse()

	cfg, err := loadConfig(*configPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivnsimd: %v\n", err)
		return 2
	}
	if *addrFlag != "" {
		cfg.Addr = *addrFlag
	}

	mgr, err := service.New(cfg.Config)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivnsimd: %v\n", err)
		return 2
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivnsimd: listen: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: service.NewHandler(mgr)}

	// The bound address on stdout is the machine-readable "ready" line
	// scripts wait for (":0" configs only learn the port here).
	fmt.Printf("ivnsimd: listening on %s\n", ln.Addr())
	log.Printf("ivnsimd: config %+v", cfg)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)

	errc := make(chan error, 1)
	//ivn:allow goroutinehygiene the accept loop must run beside the signal loop; Serve's return is joined through errc below
	go func() { errc <- srv.Serve(ln) }()

	for {
		select {
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				reload(*configPath, &cfg, mgr)
				continue
			}
			log.Printf("ivnsimd: %v: draining (timeout %v)", sig, drainTimeout)
			ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			shutErr := srv.Shutdown(ctx)
			closeErr := mgr.Close(ctx)
			cancel()
			if shutErr != nil || closeErr != nil {
				log.Printf("ivnsimd: forced exit: server %v, manager %v", shutErr, closeErr)
				return 1
			}
			log.Printf("ivnsimd: drained cleanly")
			return 0
		case err := <-errc:
			if errors.Is(err, http.ErrServerClosed) {
				// Shutdown path already handled above.
				continue
			}
			fmt.Fprintf(os.Stderr, "ivnsimd: serve: %v\n", err)
			return 1
		}
	}
}

// reload re-reads the config file and hot-applies what a live daemon
// can change. cfg tracks the currently-applied document so repeated
// SIGHUPs only log real diffs.
func reload(path string, cfg *daemonConfig, mgr *service.Manager) {
	if path == "" {
		log.Printf("ivnsimd: SIGHUP ignored: no -config file to reload")
		return
	}
	next, err := loadConfig(path)
	if err != nil {
		log.Printf("ivnsimd: SIGHUP: keeping previous config: %v", err)
		return
	}
	if fields := restartRequired(*cfg, next); len(fields) > 0 {
		log.Printf("ivnsimd: SIGHUP: %v changed but need a restart to apply", fields)
	}
	mgr.Reconfigure(next.MaxParallel, next.CacheEntries)
	log.Printf("ivnsimd: SIGHUP: applied max_parallel=%d cache_entries=%d",
		next.MaxParallel, next.CacheEntries)
	// Track what is actually in effect: hot fields from next, restart
	// fields keep their running values.
	next.Addr, next.Workers, next.QueueDepth = cfg.Addr, cfg.Workers, cfg.QueueDepth
	*cfg = next
}
