// Command ivnscan probes a single IVN deployment scenario: it builds a
// CIB system, places a sensor at the requested geometry, and reports the
// full link budget — delivered peak power, power-up verdict, and uplink
// decode outcome.
//
// Usage:
//
//	ivnscan -medium water -depth 0.11 -air 0.9 -antennas 8 -tag miniature
//	ivnscan -medium air -air 25 -antennas 8 -tag standard
//	ivnscan -swine gastric -antennas 8 -tag standard -sessions 6
package main

import (
	"flag"
	"fmt"
	"os"

	"ivn"
	"ivn/internal/em"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

func main() {
	var (
		medium   = flag.String("medium", "water", "propagation medium (see -list-media)")
		depth    = flag.Float64("depth", 0.10, "sensor depth inside the medium, meters")
		air      = flag.Float64("air", 0.9, "antenna-to-medium air distance (or range for -medium air), meters")
		antennas = flag.Int("antennas", 8, "CIB antenna count (1-10)")
		tagName  = flag.String("tag", "standard", "tag model: standard | miniature")
		swine    = flag.String("swine", "", "swine placement instead of a tank: gastric | subcutaneous")
		sessions = flag.Int("sessions", 1, "number of independent sessions to attempt")
		seed     = flag.Uint64("seed", 1, "random seed")
		listM    = flag.Bool("list-media", false, "list media presets and exit")
	)
	flag.Parse()

	if *listM {
		for _, m := range em.Presets() {
			fmt.Printf("%-18s εr=%-5.1f σ=%.2f S/m  loss %.2f dB/cm @915 MHz\n",
				m.Name, m.EpsilonR, m.Conductivity, m.LossDBPerCM(915e6))
		}
		return
	}

	var model tag.Model
	switch *tagName {
	case "standard":
		model = tag.StandardTag()
	case "miniature":
		model = tag.MiniatureTag()
	default:
		fmt.Fprintf(os.Stderr, "ivnscan: unknown tag %q\n", *tagName)
		os.Exit(2)
	}

	var sc scenario.Scenario
	switch {
	case *swine == "gastric":
		sc = scenario.NewSwine(scenario.Gastric)
	case *swine == "subcutaneous":
		sc = scenario.NewSwine(scenario.Subcutaneous)
	case *swine != "":
		fmt.Fprintf(os.Stderr, "ivnscan: unknown swine placement %q\n", *swine)
		os.Exit(2)
	case *medium == "air":
		sc = scenario.NewAir(*air)
	default:
		m, ok := em.MediumByName(*medium)
		if !ok {
			fmt.Fprintf(os.Stderr, "ivnscan: unknown medium %q (try -list-media)\n", *medium)
			os.Exit(2)
		}
		sc = scenario.NewTank(*air, m, *depth)
	}

	sys, err := ivn.New(ivn.Config{Antennas: *antennas, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivnscan: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("scenario: %s\n", sc.Name())
	fmt.Printf("tag:      %s (sensitivity %.1f dBm peak)\n", model.Name, model.SensitivityDBm())
	fmt.Printf("plan:     %v Hz on %d antennas at %.0f MHz\n",
		sys.FrequencyPlan(), *antennas, sys.Beamformer.CenterFreq/1e6)

	okCount := 0
	for i := 0; i < *sessions; i++ {
		session, err := sys.Inventory(sc, model)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivnscan: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("session %d: %s\n", i+1, session)
		if session.Decoded {
			okCount++
		}
	}
	fmt.Printf("result: %d/%d sessions decoded\n", okCount, *sessions)
}
