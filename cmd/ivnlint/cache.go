package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"ivn/internal/lint"
)

// cacheSchema versions the on-disk cache entry layout. Bump it when the
// stored DirResult shape or the key derivation changes; old entries are
// then simply never looked up again.
const cacheSchema = 1

// cache replays per-directory lint results keyed by content hashes, so a
// full-tree run after an incremental edit re-analyzes only the changed
// package and its dependents. An entry's key covers everything that can
// influence the directory's findings:
//
//   - the cache schema and Go toolchain version,
//   - the analyzer set requested,
//   - the lint implementation itself (internal/lint + cmd/ivnlint
//     sources), so editing an analyzer invalidates everything,
//   - the directory's own .go files, and
//   - the .go files of every transitive module-local dependency —
//     interprocedural passes (hot-path closures, derived pool facts)
//     read callee bodies across package boundaries, so a dependency
//     edit must miss even when the directory itself is untouched.
type cache struct {
	root string // module root (absolute)
	dir  string // cache directory
	base string // key prefix shared by every directory this run

	module  string              // module path from go.mod
	hashes  map[string]string   // dir → content hash (memoized)
	imports map[string][]string // dir → module-local dep dirs (memoized)
}

// newCache builds the cache front end for one run. analyzers must be the
// names actually run, in call order.
func newCache(root, cacheDir, module string, analyzers []string) (*cache, error) {
	c := &cache{
		root:    root,
		dir:     cacheDir,
		module:  module,
		hashes:  map[string]string{},
		imports: map[string][]string{},
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, err
	}
	h := sha256.New()
	fmt.Fprintf(h, "schema %d\ntoolchain %s\nanalyzers %s\n",
		cacheSchema, runtime.Version(), strings.Join(analyzers, ","))
	for _, tool := range []string{
		filepath.Join(root, "internal", "lint"),
		filepath.Join(root, "cmd", "ivnlint"),
	} {
		th, err := c.dirHash(tool)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(h, "tool %s\n", th)
	}
	c.base = hex.EncodeToString(h.Sum(nil))
	return c, nil
}

// dirHash hashes a directory's .go files (names and contents, sorted).
func (c *cache) dirHash(dir string) (string, error) {
	if h, ok := c.hashes[dir]; ok {
		return h, nil
	}
	names, err := goFiles(dir)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %d\n", name, len(data))
		_, _ = h.Write(data) // hash.Hash writes never fail
	}
	sum := hex.EncodeToString(h.Sum(nil))
	c.hashes[dir] = sum
	return sum, nil
}

// deps returns the module-local directories dir's .go files import.
func (c *cache) deps(dir string) ([]string, error) {
	if d, ok := c.imports[dir]; ok {
		return d, nil
	}
	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var out []string
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != c.module && !strings.HasPrefix(path, c.module+"/") {
				continue
			}
			rel := strings.TrimPrefix(strings.TrimPrefix(path, c.module), "/")
			depDir := filepath.Join(c.root, filepath.FromSlash(rel))
			if !seen[depDir] {
				seen[depDir] = true
				out = append(out, depDir)
			}
		}
	}
	sort.Strings(out)
	c.imports[dir] = out
	return out, nil
}

// key derives dir's cache key: the run-wide base plus the content hashes
// of dir and its transitive module-local dependency closure.
func (c *cache) key(dir string) (string, error) {
	closure := []string{dir}
	seen := map[string]bool{dir: true}
	for i := 0; i < len(closure); i++ {
		deps, err := c.deps(closure[i])
		if err != nil {
			return "", err
		}
		for _, d := range deps {
			if !seen[d] {
				seen[d] = true
				closure = append(closure, d)
			}
		}
	}
	sort.Strings(closure)
	h := sha256.New()
	fmt.Fprintf(h, "base %s\n", c.base)
	for _, d := range closure {
		dh, err := c.dirHash(d)
		if err != nil {
			return "", err
		}
		rel, err := filepath.Rel(c.root, d)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "dep %s %s\n", filepath.ToSlash(rel), dh)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// entry is one stored per-directory result; paths are module-relative so
// a checkout location change does not poison the cache.
type entry struct {
	Schema int             `json:"schema"`
	Result *lint.DirResult `json:"result"`
}

// load returns the cached DirResult for key, or nil on any miss
// (absent, unreadable, or schema mismatch — never an error).
func (c *cache) load(key string) *lint.DirResult {
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil
	}
	var e entry
	if json.Unmarshal(data, &e) != nil || e.Schema != cacheSchema || e.Result == nil {
		return nil
	}
	c.rebasePaths(e.Result, false)
	return e.Result
}

// store writes dir's result under key; failures are silently ignored (a
// cold cache is always correct). The write is atomic via rename so a
// concurrent run never reads a torn entry.
func (c *cache) store(key string, res *lint.DirResult) {
	cp := &lint.DirResult{
		Findings: append([]lint.Finding(nil), res.Findings...),
		Sites:    append([]lint.SuppRef(nil), res.Sites...),
		Used:     append([]lint.SuppRef(nil), res.Used...),
	}
	c.rebasePaths(cp, true)
	data, err := json.Marshal(entry{Schema: cacheSchema, Result: cp})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return
	}
	if tmp.Close() != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), filepath.Join(c.dir, key+".json")) != nil {
		_ = os.Remove(tmp.Name())
	}
}

// rebasePaths converts every file path in res between absolute (in
// memory) and module-relative (on disk) form.
func (c *cache) rebasePaths(res *lint.DirResult, toRelative bool) {
	conv := func(p string) string {
		if toRelative {
			if rel, err := filepath.Rel(c.root, p); err == nil && !strings.HasPrefix(rel, "..") {
				return filepath.ToSlash(rel)
			}
			return p
		}
		if !filepath.IsAbs(p) {
			return filepath.Join(c.root, filepath.FromSlash(p))
		}
		return p
	}
	for i := range res.Findings {
		res.Findings[i].File = conv(res.Findings[i].File)
	}
	for i := range res.Sites {
		res.Sites[i].File = conv(res.Sites[i].File)
	}
	for i := range res.Used {
		res.Used[i].File = conv(res.Used[i].File)
	}
}

// goFiles lists dir's .go entries, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// defaultCacheDir is the per-user cache location; empty when the OS
// reports no user cache directory (caching is then disabled).
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "ivnlint")
}
