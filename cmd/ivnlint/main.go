// Command ivnlint runs the repository's domain lint suite (internal/lint)
// over package patterns and reports violations of the simulator's
// correctness invariants: determinism of published tables, scratch-pool
// discipline, float-comparison hygiene, sanctioned concurrency, and
// handled errors.
//
// Usage:
//
//	ivnlint [-json] [-analyzers determinism,pooldiscipline] [pattern ...]
//	ivnlint -list
//
// Patterns are module-relative directories in the go tool's style:
// ".", "./internal/dsp", "./...". With no pattern, "./..." is assumed.
// Exit status: 0 clean, 1 findings reported, 2 usage or load error.
//
// Suppress a finding with a comment on (or directly above) the line:
//
//	//ivn:allow <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ivn/internal/lint"
)

func main() {
	var (
		asJSON = flag.Bool("json", false, "emit findings as a JSON array")
		list   = flag.Bool("list", false, "list analyzers and exit")
		names  = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *names != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*names, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "ivnlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivnlint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(root, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivnlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := lint.LintDirs(root, dirs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivnlint: %v\n", err)
		os.Exit(2)
	}

	// Report paths relative to the module root for stable, clickable
	// output regardless of invocation directory.
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}

	if *asJSON {
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "ivnlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "ivnlint: %d package dir(s), %d finding(s)\n", len(dirs), len(findings))
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
