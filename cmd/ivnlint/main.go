// Command ivnlint runs the repository's domain lint suite (internal/lint)
// over package patterns and reports violations of the simulator's
// correctness invariants: determinism of published tables, scratch-pool
// discipline, float-comparison hygiene, sanctioned concurrency, handled
// errors, physical-unit consistency, and statically alloc-free hot paths.
//
// Usage:
//
//	ivnlint [-json] [-analyzers determinism,pooldiscipline] [-nocache] [pattern ...]
//	ivnlint -list
//
// Patterns are module-relative directories in the go tool's style:
// ".", "./internal/dsp", "./...". With no pattern, "./..." is assumed.
// Exit status: 0 clean, 1 findings reported, 2 usage or load error.
//
// Results are cached per package directory under the user cache dir
// (override with -cachedir, disable with -nocache), keyed by the content
// of the directory, its transitive module-local dependencies, the lint
// implementation, and the toolchain — so a full-tree run after an
// incremental edit re-analyzes only the changed packages and their
// dependents.
//
// With -json the command emits a single report object:
//
//	{
//	  "schema": 1,
//	  "toolchain": "go1.x",
//	  "analyzers": ["determinism", ...],
//	  "packages": 28,
//	  "cache_hits": 27,
//	  "cache_misses": 1,
//	  "findings": [{"file": ..., "line": ..., "col": ..., "analyzer": ..., "message": ...}]
//	}
//
// Suppress a finding with a comment on (or directly above) the line:
//
//	//ivn:allow <analyzer> <reason>
//
// A suppression whose analyzer ran but no longer fires on its line is
// itself reported (analyzer "ivnlint"), so stale allowances cannot
// accumulate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"ivn/internal/lint"
)

// report is the -json output schema.
type report struct {
	Schema      int            `json:"schema"`
	Toolchain   string         `json:"toolchain"`
	Analyzers   []string       `json:"analyzers"`
	Packages    int            `json:"packages"`
	CacheHits   int            `json:"cache_hits"`
	CacheMisses int            `json:"cache_misses"`
	Findings    []lint.Finding `json:"findings"`
}

func main() {
	var (
		asJSON   = flag.Bool("json", false, "emit a JSON report object")
		list     = flag.Bool("list", false, "list analyzers and exit")
		names    = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		noCache  = flag.Bool("nocache", false, "disable the per-package result cache")
		cacheDir = flag.String("cachedir", "", "cache directory (default: <user cache dir>/ivnlint)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *names != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*names, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "ivnlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}
	analyzerNames := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		analyzerNames = append(analyzerNames, a.Name)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivnlint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(root, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivnlint: %v\n", err)
		os.Exit(2)
	}

	findings, hits, misses, err := run(root, dirs, analyzers, analyzerNames, cacheConfig(*noCache, *cacheDir))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivnlint: %v\n", err)
		os.Exit(2)
	}

	// Report paths relative to the module root for stable, clickable
	// output regardless of invocation directory.
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}

	if *asJSON {
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{
			Schema:      cacheSchema,
			Toolchain:   runtime.Version(),
			Analyzers:   analyzerNames,
			Packages:    len(dirs),
			CacheHits:   hits,
			CacheMisses: misses,
			Findings:    findings,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "ivnlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "ivnlint: %d package dir(s), %d finding(s), cache %d hit(s) / %d miss(es)\n",
			len(dirs), len(findings), hits, misses)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// cacheConfig resolves the cache directory; "" disables caching.
func cacheConfig(noCache bool, override string) string {
	if noCache {
		return ""
	}
	if override != "" {
		return override
	}
	return defaultCacheDir()
}

// run lints dirs, replaying cached per-directory results where the key
// matches and analyzing only the rest. Stale-suppression findings are
// derived at merge time over the full requested set, so they stay exact
// even when every directory is a cache hit.
func run(root string, dirs []string, analyzers []*lint.Analyzer, analyzerNames []string, cacheDir string) (findings []lint.Finding, hits, misses int, err error) {
	perDir := map[string]*lint.DirResult{}
	missDirs := dirs
	var (
		c    *cache
		keys map[string]string
	)
	if cacheDir != "" {
		module, merr := modulePath(root)
		if merr == nil {
			c, merr = newCache(root, cacheDir, module, analyzerNames)
		}
		if merr != nil {
			// A broken cache must never break the lint run.
			c = nil
		}
	}
	if c != nil {
		keys = make(map[string]string, len(dirs))
		missDirs = missDirs[:0:0]
		for _, dir := range dirs {
			key, kerr := c.key(dir)
			if kerr == nil {
				keys[dir] = key
				if res := c.load(key); res != nil {
					perDir[dir] = res
					hits++
					continue
				}
			}
			missDirs = append(missDirs, dir)
			misses++
		}
	}
	if len(missDirs) > 0 {
		// Stale reporting is deferred to the merge below: a fresh pass
		// over a partial set cannot see uses recorded by cached dirs.
		res, rerr := lint.LintDirsDetailed(root, missDirs, analyzers, lint.RunOptions{ReportStale: false})
		if rerr != nil {
			return nil, hits, misses, rerr
		}
		for dir, d := range res.PerDir {
			perDir[dir] = d
			if c != nil {
				if key, ok := keys[dir]; ok {
					c.store(key, d)
				}
			}
		}
	}
	return lint.MergeDirResults(perDir, analyzerNames, true), hits, misses, nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module declaration from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", filepath.Join(root, "go.mod"))
}
